// Frontend tests: lexer, parser, elaborator and interpreter semantics,
// validated by simulating small VHDL sources on the sequential engine.
#include <gtest/gtest.h>

#include "frontend/elaborator.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"

namespace vsim::fe {
namespace {

// ------------------------------------------------------------- lexer

TEST(Lexer, TokenKinds) {
  Lexer lex("entity E is port (a : in std_logic); end E; -- comment\n"
            "x <= '1' after 5 ns; y := 2_000; s = \"01ZX\"");
  const auto toks = lex.tokenize();
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, Tok::kEntity);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "e");  // case-folded
  EXPECT_EQ(toks.back().kind, Tok::kEof);
}

TEST(Lexer, DistinguishesCharLiteralFromAttributeTick) {
  Lexer lex("clk'event x '1'");
  const auto toks = lex.tokenize();
  EXPECT_EQ(toks[0].kind, Tok::kIdent);  // clk
  EXPECT_EQ(toks[1].kind, Tok::kTick);
  EXPECT_EQ(toks[2].kind, Tok::kIdent);  // event
  EXPECT_EQ(toks[3].kind, Tok::kIdent);  // x
  EXPECT_EQ(toks[4].kind, Tok::kCharLit);
  EXPECT_EQ(toks[4].text, "1");
}

TEST(Lexer, UnderscoresInNumbers) {
  Lexer lex("16_384");
  const auto toks = lex.tokenize();
  EXPECT_EQ(toks[0].value, 16384);
}

TEST(Lexer, ReportsErrorPosition) {
  Lexer lex("a\n  @");
  EXPECT_THROW(lex.tokenize(), ParseError);
  try {
    Lexer lex2("a\n  @");
    (void)lex2.tokenize();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// ------------------------------------------------------------ parser

TEST(Parser, EntityPortsAndModes) {
  const auto file = parse(R"(
    entity gate is
      port (a, b : in std_logic;
            q : out std_logic_vector(7 downto 0);
            n : in integer);
    end gate;
  )");
  ASSERT_EQ(file.entities.size(), 1u);
  const auto& e = file.entities[0];
  EXPECT_EQ(e.name, "gate");
  ASSERT_EQ(e.ports.size(), 4u);
  EXPECT_EQ(e.ports[0].dir, ast::PortDir::kIn);
  EXPECT_EQ(e.ports[2].dir, ast::PortDir::kOut);
  EXPECT_EQ(e.ports[2].type.kind, ast::TypeKind::kStdLogicVector);
  EXPECT_EQ(e.ports[2].type.width(), 8u);
  EXPECT_EQ(e.ports[3].type.kind, ast::TypeKind::kInteger);
}

TEST(Parser, ArchitectureStatements) {
  const auto file = parse(R"(
    entity top is end top;
    architecture rtl of top is
      signal x, y : std_logic := '0';
      constant k : integer := 3;
    begin
      y <= x xor '1' after 2 ns;
      p1: process (x) begin
        null;
      end process;
      u1: sub port map (a => x, b => y);
    end rtl;
  )");
  ASSERT_EQ(file.architectures.size(), 1u);
  const auto& a = file.architectures[0];
  EXPECT_EQ(a.signals.size(), 3u);  // x, y, k
  EXPECT_TRUE(a.signals[2].is_constant);
  EXPECT_EQ(a.assigns.size(), 1u);
  EXPECT_EQ(a.processes.size(), 1u);
  ASSERT_EQ(a.instances.size(), 1u);
  EXPECT_EQ(a.instances[0].component, "sub");
}

TEST(Parser, SequentialStatements) {
  const auto file = parse(R"(
    entity t is end t;
    architecture a of t is
      signal s : std_logic_vector(3 downto 0);
    begin
      p: process
        variable v : integer := 0;
      begin
        if v = 0 then v := 1;
        elsif v = 1 then v := 2;
        else v := 3;
        end if;
        case v is
          when 1 => v := 10;
          when others => v := 20;
        end case;
        for i in 0 to 3 loop
          s(i) <= '0' after 1 ns;
        end loop;
        while v > 0 loop
          v := v - 1;
        end loop;
        wait on s until s(0) = '1' for 100 ns;
        report "done";
        wait;
      end process;
    end a;
  )");
  const auto& p = file.architectures[0].processes[0];
  EXPECT_TRUE(p.sensitivity.empty());
  EXPECT_EQ(p.variables.size(), 1u);
  ASSERT_GE(p.body.size(), 6u);
  EXPECT_EQ(p.body[0]->kind, ast::StmtKind::kIf);
  EXPECT_FALSE(p.body[0]->else_body.empty());  // elsif chain nests here
  EXPECT_EQ(p.body[1]->kind, ast::StmtKind::kCase);
  EXPECT_EQ(p.body[2]->kind, ast::StmtKind::kForLoop);
  EXPECT_EQ(p.body[3]->kind, ast::StmtKind::kWhileLoop);
  EXPECT_EQ(p.body[4]->kind, ast::StmtKind::kWait);
  EXPECT_EQ(p.body[4]->wait_on.size(), 1u);
  EXPECT_NE(p.body[4]->cond, nullptr);
  EXPECT_NE(p.body[4]->wait_time, nullptr);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse("entity ; is end;"), ParseError);
  EXPECT_THROW(parse("entity e is port (a : in unknown_t); end e;"),
               ParseError);
  EXPECT_THROW(parse("architecture a of e is begin x <= ; end a;"),
               ParseError);
}

// ---------------------------------------------------------- semantics

// Helper: elaborate source, simulate sequentially, return trace of probes.
struct SimResult {
  std::vector<std::vector<vhdl::TraceEntry>> traces;
};

SimResult simulate(const std::string& src, const std::string& top,
                   const std::vector<std::string>& probes,
                   PhysTime until = 1000) {
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  elaborate_source(src, top, design);
  std::vector<vhdl::SignalId> ids;
  for (const auto& name : probes) ids.push_back(design.find_signal(name));
  vhdl::TraceRecorder rec(design, ids);
  design.finalize();
  pdes::SequentialEngine eng(graph);
  eng.set_commit_hook(rec.hook());
  eng.run(until);
  SimResult r;
  for (std::size_t i = 0; i < probes.size(); ++i)
    r.traces.push_back(rec.trace(i));
  return r;
}

TEST(Interp, CombinationalAssignAndDelta) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal x : std_logic := '0';
      signal y : std_logic;
    begin
      y <= not x;
      stim: process begin
        x <= '1';
        wait for 10 ns;
        x <= '0';
        wait;
      end process;
    end a;
  )", "t", {"t/y"});
  const auto& y = r.traces[0];
  // t=0: first evaluation sees the old x='0' (y -> '1'), then the stim
  // assignment lands in a delta cycle (y -> '0'); at t=10, x falls again.
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0].value.str(), "1");
  EXPECT_EQ(y[0].ts.pt, 0);
  EXPECT_GT(y[0].ts.lt, 0);  // settled in a delta cycle, not at (0,0)
  EXPECT_EQ(y[1].value.str(), "0");
  EXPECT_EQ(y[1].ts.pt, 0);
  EXPECT_GT(y[1].ts.lt, y[0].ts.lt);  // one delta later
  EXPECT_EQ(y[2].value.str(), "1");
  EXPECT_EQ(y[2].ts.pt, 10);
}

TEST(Interp, VariablesUpdateImmediatelySignalsAtDelta) {
  // Classic VHDL semantics test: v is visible immediately, s only in the
  // next delta, so y = old s while z = new v.
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal s : std_logic := '0';
      signal y, z : std_logic;
      signal trig : std_logic := '0';
    begin
      stim: process begin
        wait for 5 ns;
        trig <= '1';
        wait;
      end process;
      p: process (trig)
        variable v : std_logic := '0';
      begin
        if trig = '1' then
          v := '1';
          s <= '1';
          y <= s;   -- old signal value ('0')
          z <= v;   -- new variable value ('1')
        end if;
      end process;
    end a;
  )", "t", {"t/y", "t/z", "t/s"});
  // y never changes from U->'0'... it is assigned '0' (old s).
  ASSERT_FALSE(r.traces[0].empty());
  EXPECT_EQ(r.traces[0].back().value.str(), "0");
  ASSERT_FALSE(r.traces[1].empty());
  EXPECT_EQ(r.traces[1].back().value.str(), "1");
  EXPECT_EQ(r.traces[2].back().value.str(), "1");
}

TEST(Interp, VectorArithmeticCounter) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal clk : std_logic := '0';
      signal cnt : std_logic_vector(3 downto 0) := "0000";
    begin
      clkgen: process begin
        clk <= '1'; wait for 5 ns;
        clk <= '0'; wait for 5 ns;
      end process;
      counter: process (clk) begin
        if rising_edge(clk) then
          cnt <= cnt + 1;
        end if;
      end process;
    end a;
  )", "t", {"t/cnt"}, 75);
  const auto& cnt = r.traces[0];
  ASSERT_GE(cnt.size(), 7u);
  EXPECT_EQ(cnt[0].value.str(), "0001");
  EXPECT_EQ(cnt[1].value.str(), "0010");
  EXPECT_EQ(cnt[5].value.str(), "0110");
}

TEST(Interp, CaseStatementAndConcat) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal x, y : std_logic := '0';
      signal dec : std_logic_vector(1 downto 0) := "00";
      signal go : std_logic := '0';
    begin
      stim: process begin
        wait for 1 ns; x <= '1';
        wait for 1 ns; y <= '1';
        wait;
      end process;
      p: process (x, y)
        variable sel : std_logic_vector(1 downto 0);
      begin
        sel := x & y;
        case sel is
          when "00" => dec <= "00";
          when "10" => dec <= "01";
          when "11" => dec <= "10";
          when others => dec <= "11";
        end case;
      end process;
    end a;
  )", "t", {"t/dec"}, 50);
  const auto& dec = r.traces[0];
  ASSERT_EQ(dec.size(), 2u);
  EXPECT_EQ(dec[0].value.str(), "01");  // x=1,y=0 at t=1
  EXPECT_EQ(dec[1].value.str(), "10");  // x=1,y=1 at t=2
}

TEST(Interp, ForLoopIndexedAssignment) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal v : std_logic_vector(3 downto 0) := "0000";
    begin
      p: process begin
        for i in 0 to 3 loop
          v(i) <= '1';
          wait for 10 ns;
        end loop;
        wait;
      end process;
    end a;
  )", "t", {"t/v"}, 100);
  const auto& v = r.traces[0];
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].value.str(), "0001");
  EXPECT_EQ(v[1].value.str(), "0011");
  EXPECT_EQ(v[3].value.str(), "1111");
}

TEST(Interp, WaitForTimeoutCancelledBySensitivityWake) {
  // `wait on s for 100 ns`: the event at t=10 must cancel the timeout,
  // so the process runs exactly twice (t=10 and after the next wait).
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal s : std_logic := '0';
      signal fired : std_logic_vector(3 downto 0) := "0000";
      signal n : std_logic_vector(3 downto 0) := "0000";
    begin
      stim: process begin
        wait for 10 ns;
        s <= '1';
        wait;
      end process;
      p: process begin
        wait on s for 100 ns;
        n <= n + 1;
      end process;
    end a;
  )", "t", {"t/n"}, 250);
  const auto& n = r.traces[0];
  // Wakes: t=10 (event on s, timeout at 100 cancelled), then t=110
  // (timeout, no more events), then t=210.
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0].ts.pt, 10);
  EXPECT_EQ(n[1].ts.pt, 110);
  EXPECT_EQ(n[2].ts.pt, 210);
}

TEST(Interp, WaitUntilConditionChecksAtResume) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal a_s, b_s : std_logic := '0';
      signal seen : std_logic := '0';
    begin
      stim: process begin
        wait for 10 ns; a_s <= '1';   -- cond false (b_s = 0)
        wait for 10 ns; b_s <= '1';   -- cond true now
        wait;
      end process;
      p: process begin
        wait until a_s = '1' and b_s = '1';
        seen <= '1';
        wait;
      end process;
    end a;
  )", "t", {"t/seen"}, 100);
  const auto& seen = r.traces[0];
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].ts.pt, 20);
}

TEST(Interp, TransportVsInertialFromSource) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal x : std_logic := '0';
      signal yi, yt : std_logic := '0';
    begin
      stim: process begin
        wait for 10 ns; x <= '1';
        wait for 2 ns; x <= '0';   -- 2 ns pulse
        wait;
      end process;
      yi <= x after 5 ns;             -- inertial: pulse swallowed
      yt <= transport x after 5 ns;   -- transport: pulse passes
    end a;
  )", "t", {"t/yi", "t/yt"}, 100);
  EXPECT_TRUE(r.traces[0].empty());   // inertial output never changes
  ASSERT_EQ(r.traces[1].size(), 2u);  // transport sees both edges
  EXPECT_EQ(r.traces[1][0].ts.pt, 15);
  EXPECT_EQ(r.traces[1][1].ts.pt, 17);
}

TEST(Interp, HierarchyAndPositionalPortMap) {
  const auto r = simulate(R"(
    entity inv is
      port (i : in std_logic; o : out std_logic);
    end inv;
    architecture rtl of inv is
    begin
      o <= not i;
    end rtl;

    entity t is end t;
    architecture a of t is
      component inv is
        port (i : in std_logic; o : out std_logic);
      end component inv;
      signal x, m, y : std_logic := '0';
    begin
      u1: inv port map (i => x, o => m);
      u2: inv port map (m, y);
      stim: process begin
        wait for 10 ns;
        x <= '1';
        wait;
      end process;
    end a;
  )", "t", {"t/y"}, 50);
  // Double inversion with the classic time-zero glitch: u2 first evaluates
  // with the old m='0' (y -> '1'), then m's delta update brings y back to
  // '0'; the real edge arrives two deltas after x rises at t=10.
  const auto& y = r.traces[0];
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0].value.str(), "1");
  EXPECT_EQ(y[0].ts.pt, 0);
  EXPECT_EQ(y[1].value.str(), "0");
  EXPECT_EQ(y[1].ts.pt, 0);
  EXPECT_EQ(y[2].value.str(), "1");
  EXPECT_EQ(y[2].ts.pt, 10);
}

TEST(Interp, ConstantsFoldInDelaysAndGuards) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      constant d : integer := 7;
      signal x, y : std_logic := '0';
    begin
      stim: process begin
        wait for 10 ns; x <= '1'; wait;
      end process;
      y <= x after d;
    end a;
  )", "t", {"t/y"}, 50);
  ASSERT_EQ(r.traces[0].size(), 1u);
  EXPECT_EQ(r.traces[0][0].ts.pt, 17);  // 10 + constant delay 7
}

TEST(Interp, ForGenerateReplicatesProcesses) {
  // A 4-bit shift register built with for...generate: each stage is a
  // generated process indexing the vector with the generate constant.
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal clk : std_logic := '0';
      signal din : std_logic := '0';
      signal sr : std_logic_vector(3 downto 0) := "0000";
      signal taps : std_logic_vector(3 downto 0) := "0000";
    begin
      clkgen: process begin
        clk <= '1'; wait for 5 ns;
        clk <= '0'; wait for 5 ns;
      end process;
      stim: process begin
        din <= '1';
        wait for 10 ns;
        din <= '0';
        wait;
      end process;
      stage0: process (clk) begin
        if rising_edge(clk) then sr(0) <= din; end if;
      end process;
      gen: for i in 1 to 3 generate
        stage: process (clk) begin
          if rising_edge(clk) then sr(i) <= sr(i - 1); end if;
        end process;
      end generate gen;
      taps <= sr;
    end a;
  )", "t", {"t/taps"}, 60);
  const auto& taps = r.traces[0];
  // din='1' for the first edge only: a single 1 marches down the register.
  ASSERT_GE(taps.size(), 4u);
  EXPECT_EQ(taps[0].value.str(), "0001");
  EXPECT_EQ(taps[1].value.str(), "0010");
  EXPECT_EQ(taps[2].value.str(), "0100");
  EXPECT_EQ(taps[3].value.str(), "1000");
}

TEST(Interp, NestedGenerateWithConstantArithmetic) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal v : std_logic_vector(5 downto 0) := "000000";
      signal go : std_logic := '0';
    begin
      stim: process begin
        wait for 5 ns; go <= '1'; wait;
      end process;
      outer: for i in 0 to 1 generate
        inner: for j in 0 to 2 generate
          p: process (go) begin
            if go = '1' then v(i * 3 + j) <= '1'; end if;
          end process;
        end generate inner;
      end generate outer;
    end a;
  )", "t", {"t/v"}, 50);
  ASSERT_FALSE(r.traces[0].empty());
  EXPECT_EQ(r.traces[0].back().value.str(), "111111");
}

TEST(Interp, WhileLoopAndModArithmetic) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal out3 : std_logic_vector(3 downto 0) := "0000";
    begin
      p: process
        variable n : integer := 27;
        variable count : integer := 0;
      begin
        while n > 1 loop
          if n mod 2 = 0 then
            n := n / 2;   -- unsupported '/': replaced below
          else
            n := 3 * n + 1;
          end if;
          count := count + 1;
          n := n mod 16;  -- keep it bounded for the test
        end loop;
        out3 <= to_unsigned(count, 4);
        wait;
      end process;
    end a;
  )", "t", {"t/out3"}, 50);
  // The exact value is not the point; the loop must terminate and emit
  // a deterministic count.
  ASSERT_EQ(r.traces[0].size(), 1u);
  const auto v = r.traces[0][0].value.to_uint();
  ASSERT_TRUE(v.ok);
  EXPECT_GT(v.value, 0u);
}

TEST(Interp, BooleanVariablesAndRelations) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal y : std_logic := '0';
      signal go : std_logic := '0';
    begin
      stim: process begin
        wait for 5 ns; go <= '1'; wait;
      end process;
      p: process (go)
        variable armed : boolean := false;
        variable level : integer := 0;
      begin
        if go = '1' then
          level := 7;
          armed := level >= 5 and level < 10;
          if armed then
            y <= '1';
          end if;
        end if;
      end process;
    end a;
  )", "t", {"t/y"}, 50);
  ASSERT_EQ(r.traces[0].size(), 1u);
  EXPECT_EQ(r.traces[0][0].value.str(), "1");
  EXPECT_EQ(r.traces[0][0].ts.pt, 5);
}

TEST(Interp, MultipleArchitecturesLastOneBinds) {
  // Two architectures for the same entity: library binding picks the last.
  const auto r = simulate(R"(
    entity leaf is
      port (i : in std_logic; o : out std_logic);
    end leaf;
    architecture first of leaf is
    begin
      o <= i;  -- identity
    end first;
    architecture second of leaf is
    begin
      o <= not i;  -- inverter: this one must win
    end second;

    entity t is end t;
    architecture a of t is
      component leaf is
        port (i : in std_logic; o : out std_logic);
      end component leaf;
      signal x, y : std_logic := '0';
    begin
      u: leaf port map (i => x, o => y);
      stim: process begin
        wait for 10 ns; x <= '1'; wait;
      end process;
    end a;
  )", "t", {"t/y"}, 50);
  ASSERT_GE(r.traces[0].size(), 1u);
  EXPECT_EQ(r.traces[0][0].value.str(), "1");  // inverted '0' at t=0
}

TEST(Interp, CaseOnIntegerSelector) {
  const auto r = simulate(R"(
    entity t is end t;
    architecture a of t is
      signal clk : std_logic := '0';
      signal phase : std_logic_vector(1 downto 0) := "00";
    begin
      clkgen: process begin
        clk <= '1'; wait for 5 ns;
        clk <= '0'; wait for 5 ns;
      end process;
      p: process (clk)
        variable n : integer := 0;
      begin
        if rising_edge(clk) then
          n := (n + 1) mod 3;
          case n is
            when 0 => phase <= "00";
            when 1 => phase <= "01";
            when others => phase <= "10";
          end case;
        end if;
      end process;
    end a;
  )", "t", {"t/phase"}, 35);
  const auto& ph = r.traces[0];
  ASSERT_GE(ph.size(), 3u);
  EXPECT_EQ(ph[0].value.str(), "01");  // n=1 at first edge
  EXPECT_EQ(ph[1].value.str(), "10");  // n=2
  EXPECT_EQ(ph[2].value.str(), "00");  // n=0
}

TEST(Interp, ProcessWithoutWaitIsDiagnosed) {
  // A process whose body never waits would spin forever; the interpreter's
  // instruction budget must turn that into an error, not a hang.
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  elaborate_source(R"(
    entity t is end t;
    architecture a of t is
      signal y : std_logic := '0';
    begin
      p: process
        variable n : integer := 0;
      begin
        while n >= 0 loop
          n := n + 1;
        end loop;
        y <= '1';
        wait;
      end process;
    end a;
  )", "t", design);
  design.finalize();
  pdes::SequentialEngine eng(graph);
  EXPECT_THROW(eng.run(10), ElabError);
}

TEST(Elaborate, ErrorsAreDiagnosed) {
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  EXPECT_THROW(elaborate_source("entity t is end t;", "missing", design),
               ElabError);
  EXPECT_THROW(elaborate_source(R"(
    entity t is end t;
    architecture a of t is
    begin
      y <= '1';
    end a;
  )", "t", design), ElabError);  // unknown signal y
}

TEST(Elaborate, EdgeDetectingProcessesGetSyncHint) {
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  elaborate_source(R"(
    entity t is end t;
    architecture a of t is
      signal clk, d, q, y : std_logic := '0';
    begin
      reg: process (clk) begin
        if rising_edge(clk) then q <= d; end if;
      end process;
      comb: process (d) begin
        y <= not d;
      end process;
    end a;
  )", "t", design);
  bool reg_sync = false, comb_sync = true;
  for (std::size_t p = 0; p < design.num_processes(); ++p) {
    const auto& lp = design.process(static_cast<vhdl::ProcessId>(p));
    if (lp.name().find("reg") != std::string::npos) reg_sync = lp.sync_hint();
    if (lp.name().find("comb") != std::string::npos)
      comb_sync = lp.sync_hint();
  }
  EXPECT_TRUE(reg_sync);
  EXPECT_FALSE(comb_sync);
}

// ------------------------------------------- hostile-input hardening
//
// The frontend is fed untrusted text; every failure must surface as a
// structured ParseError/ElabError, never a crash, hang, or stack
// overflow.  These run under the ASan/UBSan ci legs, where an
// out-of-bounds read or leak in an error path fails loudly.

// Fails the calling test if elaborating `src` escapes with anything other
// than a clean success or a structured frontend diagnostic.
void elaborate_hostile(const std::string& src) {
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  try {
    elaborate_source(src, "t", design);
  } catch (const ParseError&) {
  } catch (const ElabError&) {
  }
}

// Same, but lets the diagnostic escape so tests can assert its type.
void elaborate_hostile_throwing(const std::string& src) {
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  elaborate_source(src, "t", design);
}

TEST(Hostile, TruncatedSourcePrefixesAlwaysDiagnoseStructured) {
  // A source exercising every construct (string/char literals, generics of
  // the subset: generate, case, waits, instances), cut at every byte.
  const std::string good = R"(
    entity leaf is
      port (i : in std_logic; o : out std_logic);
    end leaf;
    architecture rtl of leaf is
    begin
      o <= not i after 2 ns;
    end rtl;
    entity t is end t;
    architecture a of t is
      component leaf is
        port (i : in std_logic; o : out std_logic);
      end component leaf;
      constant k : integer := 2_000;
      signal x, y : std_logic := '0';
      signal v : std_logic_vector(3 downto 0) := "01ZX";
    begin
      u1: leaf port map (i => x, o => y);
      gen: for i in 0 to 3 generate
        p: process (x) begin
          if rising_edge(x) then v(i) <= '1'; end if;
        end process;
      end generate gen;
      q: process
        variable n : integer := 0;
      begin
        case n is
          when 0 => n := 1;
          when others => n := 0;
        end case;
        wait on x until v(0) = '1' for 10 ns;
        report "checkpoint -- partial";
        wait;
      end process;
    end a;
  )";
  for (std::size_t len = 0; len <= good.size(); ++len)
    elaborate_hostile(good.substr(0, len));
}

TEST(Hostile, GarbageBytesDiagnoseStructured) {
  const char* cases[] = {
      "\x01\x02\xff\xfe",
      "entity t is end t; architecture a of t is begin \xc3\x28 end a;",
      "entity t is end t; -- comment that never ends",
      "entity t is end t; architecture a of t is begin p: process begin "
      "report \"unterminated",
      "entity t is end t; architecture a of t is signal s : std_logic := "
      "'",  // truncated char literal
      "'''",
      "\"\"\"\"\"",
  };
  for (const char* src : cases) elaborate_hostile(src);
}

TEST(Hostile, DeepNestingDiagnosedNotStackOverflow) {
  // 200k nested parentheses used to segfault the recursive descent; the
  // shared NestingGuard must turn both expression and statement towers
  // into a ParseError.
  const int n = 200000;
  {
    std::string src =
        "entity t is end t;\narchitecture a of t is\nbegin\n"
        "  p: process\n    variable v : integer := 0;\n  begin\n    v := " +
        std::string(static_cast<std::size_t>(n), '(') + "1" +
        std::string(static_cast<std::size_t>(n), ')') +
        ";\n    wait;\n  end process;\nend a;\n";
    EXPECT_THROW(parse(src), ParseError);
  }
  {
    std::string src =
        "entity t is end t;\narchitecture a of t is\nbegin\n"
        "  p: process begin\n";
    for (int i = 0; i < 20000; ++i) src += "if true then\n";
    src += "null;\n";
    for (int i = 0; i < 20000; ++i) src += "end if;\n";
    src += "wait;\n  end process;\nend a;\n";
    EXPECT_THROW(parse(src), ParseError);
  }
}

TEST(Hostile, UnknownIdentifiersDiagnoseStructured) {
  // Unknown signal in an expression.
  EXPECT_THROW(elaborate_hostile_throwing(R"(
    entity t is end t;
    architecture a of t is
      signal y : std_logic := '0';
    begin
      y <= nosuch and '1';
    end a;
  )"), ElabError);
  // Unknown signal in a sensitivity list.
  EXPECT_THROW(elaborate_hostile_throwing(R"(
    entity t is end t;
    architecture a of t is
      signal y : std_logic := '0';
    begin
      p: process (ghost) begin y <= '1'; end process;
    end a;
  )"), ElabError);
  // Instance of an entity that does not exist.
  EXPECT_THROW(elaborate_hostile_throwing(R"(
    entity t is end t;
    architecture a of t is
      signal x : std_logic := '0';
    begin
      u1: phantom port map (i => x);
    end a;
  )"), ElabError);
  // Assignment to an undeclared target inside a process.
  EXPECT_THROW(elaborate_hostile_throwing(R"(
    entity t is end t;
    architecture a of t is
    begin
      p: process begin missing <= '1'; wait; end process;
    end a;
  )"), ElabError);
}

TEST(Hostile, ConditionAndOperandTypeErrorsDiagnoseStructured) {
  // A vector condition whose scalar() collapses multi-bit state, operand
  // width mismatches, and non-01 arithmetic must all die with the
  // interpreter's structured diagnostics when the process first runs.
  const char* runtime_cases[] = {
      // operand width mismatch in a logic op
      R"(
        entity t is end t;
        architecture a of t is
          signal v4 : std_logic_vector(3 downto 0) := "0000";
          signal v2 : std_logic_vector(1 downto 0) := "00";
          signal y : std_logic_vector(3 downto 0) := "0000";
        begin
          p: process begin
            wait for 2 ns;
            y <= v4 and v2;
            wait;
          end process;
        end a;
      )",
      // non-01 vector in a condition's arithmetic
      R"(
        entity t is end t;
        architecture a of t is
          signal u : std_logic_vector(3 downto 0) := "UXZW";
          signal y : std_logic := '0';
        begin
          p: process begin
            wait for 2 ns;
            if to_integer(u) > 2 then y <= '1'; end if;
            wait;
          end process;
        end a;
      )",
  };
  for (const char* src : runtime_cases) {
    pdes::LpGraph graph;
    vhdl::Design design(graph);
    elaborate_source(src, "t", design);
    design.finalize();
    pdes::SequentialEngine eng(graph);
    EXPECT_THROW(eng.run(10), ElabError) << src;
  }
}

}  // namespace
}  // namespace vsim::fe
