// Observability layer tests: JSON round-trips, the sharded metrics
// registry, the peak/total history fix, the bench report sink, and a golden
// test over a real machine-engine trace (well-formed Chrome events, strict
// per-track span nesting, flow arrows matched to remote message counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "bench/report.h"
#include "circuits/fsm.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partition.h"
#include "pdes/machine.h"

namespace vsim {
namespace {

// ---------------------------------------------------------------------------
// obs::Json

TEST(Json, DumpPrimitives) {
  using obs::Json;
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.5).dump(), "-3.5");
  EXPECT_EQ(Json("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(Json, RoundTripNested) {
  obs::JsonObject o;
  o.emplace_back("name", "fsm");
  o.emplace_back("speedup", 3.25);
  o.emplace_back("rows", obs::JsonArray{1, 2, 3});
  obs::JsonObject inner;
  inner.emplace_back("tw.rollbacks", std::uint64_t{7});
  o.emplace_back("metrics", inner);
  const obs::Json doc(o);

  const auto parsed = obs::Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  const obs::Json& back = *parsed;
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.find("name")->as_string(), "fsm");
  EXPECT_DOUBLE_EQ(back.find("speedup")->as_number(), 3.25);
  EXPECT_EQ(back.find("rows")->as_array().size(), 3u);
  EXPECT_EQ(back.find("metrics")->find("tw.rollbacks")->as_number(), 7.0);
  // Insertion order survives the round trip (reports stay diff-able).
  EXPECT_EQ(back.as_object()[0].first, "name");
  EXPECT_EQ(back.as_object()[3].first, "metrics");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(obs::Json::parse("{").has_value());
  EXPECT_FALSE(obs::Json::parse("[1,]").has_value());
  EXPECT_FALSE(obs::Json::parse("42 tail").has_value());
  EXPECT_FALSE(obs::Json::parse("\"unterminated").has_value());
}

TEST(Json, ParseUnicodeEscapes) {
  const auto v = obs::Json::parse("\"a\\u00e9\\n\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\xc3\xa9\n");
}

// ---------------------------------------------------------------------------
// obs::MetricsRegistry

TEST(Metrics, ShardsSumGaugesMax) {
  obs::MetricsRegistry reg(3);
  reg.shard(0).inc(obs::Metric::kEventsProcessed, 10);
  reg.shard(1).inc(obs::Metric::kEventsProcessed, 5);
  reg.shard(2).inc(obs::Metric::kEventsProcessed);
  reg.shard(0).gauge_max(obs::Gauge::kMakespan, 3.0);
  reg.shard(1).gauge_max(obs::Gauge::kMakespan, 8.0);
  reg.shard(1).gauge_max(obs::Gauge::kMakespan, 2.0);  // lower: ignored
  reg.merge();
  const obs::MetricsSnapshot& m = reg.merged();
  EXPECT_EQ(m.counter(obs::Metric::kEventsProcessed), 16u);
  EXPECT_DOUBLE_EQ(m.gauge(obs::Gauge::kMakespan), 8.0);
  EXPECT_EQ(m.counter(obs::Metric::kRollbacks), 0u);
}

TEST(Metrics, MergeIsIdempotentRecompute) {
  obs::MetricsRegistry reg(2);
  reg.shard(0).inc(obs::Metric::kGvtRounds, 4);
  reg.merge();
  reg.merge();  // merge() recomputes totals; calling twice must not double
  EXPECT_EQ(reg.merged().counter(obs::Metric::kGvtRounds), 4u);
  reg.shard(1).inc(obs::Metric::kGvtRounds);
  reg.merge();
  EXPECT_EQ(reg.merged().counter(obs::Metric::kGvtRounds), 5u);
}

TEST(Metrics, HistogramBucketsAndMerge) {
  obs::MetricsRegistry reg(2);
  reg.shard(0).observe(obs::Hist::kRollbackDepth, 0);
  reg.shard(0).observe(obs::Hist::kRollbackDepth, 1);
  reg.shard(1).observe(obs::Hist::kRollbackDepth, 9);
  reg.merge();
  const obs::Histogram& h = reg.merged().histogram(obs::Hist::kRollbackDepth);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.max, 9u);
}

TEST(Metrics, SnapshotToJsonUsesSchemaNames) {
  obs::MetricsRegistry reg(1);
  reg.shard(0).inc(obs::Metric::kNullMessages, 12);
  reg.merge();
  const obs::Json j = reg.merged().to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.find("net.null_messages")->as_number(), 12.0);
  EXPECT_NE(j.find("tw.rollback_depth"), nullptr);
}

// ---------------------------------------------------------------------------
// RunStats history aggregation (the peak-vs-sum fix)

TEST(RunStats, PeakHistoryIsMaxTotalHistoryIsSum) {
  pdes::RunStats st;
  st.per_lp.resize(3);
  st.per_lp[0].max_history = 3;
  st.per_lp[1].max_history = 7;
  st.per_lp[2].max_history = 2;
  EXPECT_EQ(st.peak_history(), 7u);   // historically returned 12
  EXPECT_EQ(st.total_history(), 12u);
}

// ---------------------------------------------------------------------------
// Machine-engine runs: trace golden test + metrics consistency

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
};

Built build_fsm(std::size_t lanes = 3) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = lanes;
  p.width = 5;
  circuits::build_fsm(*b.design, p);
  b.design->finalize();
  return b;
}

pdes::RunStats run_traced(obs::Tracer& tracer, pdes::RunConfig rc,
                          std::size_t lanes = 3) {
  Built b = build_fsm(lanes);
  auto session = tracer.session("machine", rc.num_workers);
  b.design->annotate_trace(*session);
  rc.trace = session.get();
  pdes::MachineEngine eng(
      *b.graph, partition::round_robin(b.graph->size(), rc.num_workers), rc);
  return eng.run();  // session flushes into tracer on destruction
}

struct Span {
  double ts, dur;
};

TEST(Trace, GoldenMachineRun) {
  obs::Tracer tracer("");  // in-memory
  pdes::RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = pdes::Configuration::kDynamic;
  rc.until = 300;
  const pdes::RunStats st = run_traced(tracer, rc);

  const auto parsed = obs::Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.has_value());
  const obs::Json& doc = *parsed;
  ASSERT_TRUE(doc.is_object());
  const obs::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());

  std::map<std::pair<int, int>, std::vector<Span>> spans;
  std::set<std::string> flow_out_ids, flow_in_ids;
  std::set<std::string> phase_names;
  for (const obs::Json& e : events->as_array()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") continue;
    const int pid = static_cast<int>(e.find("pid")->as_number());
    const int tid = static_cast<int>(e.find("tid")->as_number());
    const double ts = e.find("ts")->as_number();
    if (ph == "X") {
      spans[{pid, tid}].push_back(Span{ts, e.find("dur")->as_number()});
      if (std::string(e.find("cat")->as_string()) == "execute")
        phase_names.insert(e.find("name")->as_string());
    } else if (ph == "s") {
      flow_out_ids.insert(e.find("id")->as_string());
    } else if (ph == "f") {
      flow_in_ids.insert(e.find("id")->as_string());
      EXPECT_EQ(e.find("bp")->as_string(), "e");
    } else {
      EXPECT_EQ(ph, "i") << "unexpected event kind " << ph;
    }
    EXPECT_GE(ts, 0.0);
  }

  // Delta-cycle phases name the execute spans (lt mod 3).
  for (const std::string& n : phase_names)
    EXPECT_TRUE(n == "assign" || n == "driving" || n == "effective") << n;
  EXPECT_FALSE(phase_names.empty());

  // Spans on one track are strictly nested: sorted by (ts, -dur), every
  // span either contains the next or ends before it starts (half-open).
  // kEps absorbs float noise from re-summing ts+dur of adjacent spans;
  // genuine overlaps are whole work units, orders of magnitude larger.
  constexpr double kEps = 1e-6;
  for (auto& [key, v] : spans) {
    std::sort(v.begin(), v.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;
    });
    std::vector<Span> stack;
    for (const Span& s : v) {
      while (!stack.empty() &&
             stack.back().ts + stack.back().dur <= s.ts + kEps)
        stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur + kEps)
            << "span [" << s.ts << "," << s.ts + s.dur
            << ") overlaps enclosing span ending at "
            << stack.back().ts + stack.back().dur << " on track "
            << key.first << "/" << key.second;
      }
      stack.push_back(s);
    }
  }

  // Every flow finish has a matching start, and (perfect wire, uids never
  // reused) distinct flow starts == remote data messages sent.
  for (const std::string& id : flow_in_ids)
    EXPECT_TRUE(flow_out_ids.count(id)) << "unmatched flow finish " << id;
  std::uint64_t remote = 0;
  for (const auto& w : st.per_worker) remote += w.messages_sent_remote;
  EXPECT_EQ(flow_out_ids.size(), remote);
  EXPECT_EQ(flow_in_ids.size(), flow_out_ids.size());
}

TEST(Trace, LpLabelsFromDesignAppear) {
  obs::Tracer tracer("");
  pdes::RunConfig rc;
  rc.num_workers = 2;
  rc.until = 60;
  run_traced(tracer, rc);
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"proc "), std::string::npos);
  EXPECT_NE(json.find("\"sig "), std::string::npos);
}

TEST(Trace, EventBudgetIsGlobalAcrossSessions) {
  obs::Tracer tracer("", /*event_budget=*/100);
  pdes::RunConfig rc;
  rc.num_workers = 2;
  rc.until = 300;
  run_traced(tracer, rc);
  run_traced(tracer, rc);  // second session draws from what is left
  const auto parsed = obs::Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.has_value());
  const obs::Json& doc = *parsed;
  std::size_t non_meta = 0;
  for (const obs::Json& e : doc.find("traceEvents")->as_array())
    if (e.find("ph")->as_string() != "M") ++non_meta;
  EXPECT_LE(non_meta, 100u);
}

TEST(Metrics, RunStatsSnapshotMatchesLegacyTotals) {
  obs::Tracer tracer("");
  pdes::RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = pdes::Configuration::kAllOptimistic;
  rc.until = 300;
  const pdes::RunStats st = run_traced(tracer, rc);
  const obs::MetricsSnapshot& m = st.metrics;
  EXPECT_EQ(m.counter(obs::Metric::kEventsCommitted), st.total_committed());
  EXPECT_EQ(m.counter(obs::Metric::kRollbacks), st.total_rollbacks());
  EXPECT_EQ(m.counter(obs::Metric::kGvtRounds), st.gvt_rounds);
  EXPECT_EQ(m.counter(obs::Metric::kNullMessages), st.total_null_messages());
  std::uint64_t remote = 0, local = 0, processed = 0;
  for (const auto& w : st.per_worker) {
    remote += w.messages_sent_remote;
    local += w.messages_sent_local;
  }
  for (const auto& l : st.per_lp) processed += l.events_processed;
  EXPECT_EQ(m.counter(obs::Metric::kMessagesRemote), remote);
  EXPECT_EQ(m.counter(obs::Metric::kMessagesLocal), local);
  EXPECT_EQ(m.counter(obs::Metric::kEventsProcessed), processed);
  EXPECT_DOUBLE_EQ(m.gauge(obs::Gauge::kMakespan), st.makespan);
  EXPECT_EQ(m.gauge(obs::Gauge::kPeakHistory),
            static_cast<double>(st.peak_history()));
  // Rollback episodes sampled into the depth histogram one-for-one.
  std::uint64_t undone = 0;
  for (const auto& l : st.per_lp) undone += l.events_undone;
  EXPECT_EQ(m.histogram(obs::Hist::kRollbackDepth).count,
            st.total_rollbacks());
  EXPECT_EQ(m.histogram(obs::Hist::kRollbackDepth).sum, undone);
}

TEST(Metrics, ConsistentUnderCrashRecovery) {
  // A crash/recovery schedule must not double-count: the snapshot's ckpt.*
  // counters match the engine's CheckpointStats exactly.
  Built b = build_fsm();
  pdes::RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = pdes::Configuration::kDynamic;
  rc.until = 400;
  rc.checkpoint.period = 2;
  rc.checkpoint.max_recoveries = 1000;
  rc.transport.faults.seed = 11;
  rc.transport.faults.crash_rate = 0.001;
  pdes::MachineEngine eng(
      *b.graph, partition::round_robin(b.graph->size(), rc.num_workers), rc);
  const pdes::RunStats st = eng.run();
  ASSERT_GT(st.checkpoint.crashes, 0u) << "crash schedule never fired";
  const obs::MetricsSnapshot& m = st.metrics;
  EXPECT_EQ(m.counter(obs::Metric::kCrashes), st.checkpoint.crashes);
  EXPECT_EQ(m.counter(obs::Metric::kRecoveries), st.checkpoint.recoveries);
  EXPECT_EQ(m.counter(obs::Metric::kCheckpoints), st.checkpoint.checkpoints);
  EXPECT_EQ(m.counter(obs::Metric::kLpsRestored),
            st.checkpoint.lps_restored);
  EXPECT_EQ(m.counter(obs::Metric::kRollbacks), st.total_rollbacks());
  EXPECT_EQ(m.counter(obs::Metric::kGvtRounds), st.gvt_rounds);
}

// ---------------------------------------------------------------------------
// bench::Report

TEST(Report, WriteAndReadBack) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("VSIM_BENCH_DIR", dir.c_str(), 1), 0);

  Built b = build_fsm();
  pdes::RunConfig rc;
  rc.num_workers = 2;
  rc.until = 60;
  pdes::MachineEngine eng(
      *b.graph, partition::round_robin(b.graph->size(), rc.num_workers), rc);
  const pdes::RunStats st = eng.run();

  bench::Report rep("unittest");
  rep.set_config("until", std::uint64_t{60});
  rep.add_row("golden", 2, "dynamic", 1.5, st);
  rep.add_micro("BM_Foo", 123.0, 120.0, 1000);
  const std::string path = rep.write();
  unsetenv("VSIM_BENCH_DIR");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find(dir), std::string::npos);

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto parsed = obs::Json::parse(ss.str());
  ASSERT_TRUE(parsed.has_value());
  const obs::Json& doc = *parsed;
  EXPECT_EQ(doc.find("schema")->as_string(), "vsim.bench.report/v1");
  EXPECT_EQ(doc.find("name")->as_string(), "unittest");
  EXPECT_FALSE(doc.find("git_sha")->as_string().empty());
  const auto& rows = doc.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("section")->as_string(), "golden");
  EXPECT_EQ(rows[0].find("workers")->as_number(), 2.0);
  const obs::Json* metrics = rows[0].find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("engine.gvt_rounds")->as_number(),
            static_cast<double>(st.gvt_rounds));
  EXPECT_EQ(doc.find("micro")->as_array().size(), 1u);
}

}  // namespace
}  // namespace vsim
