// Unit tests for driver waveforms: transport/inertial preemption (LRM 8.4).
#include <gtest/gtest.h>

#include "vhdl/waveform.h"

namespace vsim::vhdl {
namespace {

LogicVector bit(Logic v) { return LogicVector{v}; }

TEST(Waveform, ApplySingleTransaction) {
  Waveform w(bit(Logic::k0));
  w.schedule({5, 1}, bit(Logic::k1), /*transport=*/false, {0, 0});
  EXPECT_FALSE(w.apply_matured({4, 1}));
  EXPECT_EQ(w.driving_value().scalar(), Logic::k0);
  EXPECT_TRUE(w.apply_matured({5, 1}));
  EXPECT_EQ(w.driving_value().scalar(), Logic::k1);
  EXPECT_TRUE(w.pending().empty());
}

TEST(Waveform, ApplyIsNoChangeForEqualValue) {
  Waveform w(bit(Logic::k1));
  w.schedule({5, 1}, bit(Logic::k1), false, {0, 0});
  EXPECT_FALSE(w.apply_matured({5, 1}));
}

TEST(Waveform, TransportAppendsInOrder) {
  Waveform w(bit(Logic::k0));
  w.schedule({2, 1}, bit(Logic::k1), true, {0, 0});
  w.schedule({4, 1}, bit(Logic::k0), true, {0, 0});
  w.schedule({6, 1}, bit(Logic::k1), true, {0, 0});
  EXPECT_EQ(w.pending().size(), 3u);
  w.apply_matured({4, 1});
  EXPECT_EQ(w.driving_value().scalar(), Logic::k0);
  EXPECT_EQ(w.pending().size(), 1u);
}

TEST(Waveform, TransportPreemptsLaterTransactions) {
  Waveform w(bit(Logic::k0));
  w.schedule({4, 1}, bit(Logic::k1), true, {0, 0});
  w.schedule({6, 1}, bit(Logic::k0), true, {0, 0});
  // New transaction at 3 deletes both later ones.
  w.schedule({3, 1}, bit(Logic::k1), true, {0, 0});
  ASSERT_EQ(w.pending().size(), 1u);
  EXPECT_EQ(w.pending().front().maturity, (VirtualTime{3, 1}));
}

TEST(Waveform, InertialRejectsDifferingValueInWindow) {
  // Classic glitch suppression: 0->1 pulse shorter than the delay vanishes.
  Waveform w(bit(Logic::k0));
  // At t=0 assign '1' after 5.
  w.schedule({5, 1}, bit(Logic::k1), false, {0, 0});
  // At t=1 assign '0' after 5: new transaction at 6, rejection window (1,6)
  // sweeps away the '1' at 5.
  w.schedule({6, 1}, bit(Logic::k0), false, {1, 0});
  ASSERT_EQ(w.pending().size(), 1u);
  EXPECT_EQ(w.pending().front().maturity, (VirtualTime{6, 1}));
  EXPECT_EQ(w.pending().front().value.scalar(), Logic::k0);
}

TEST(Waveform, InertialKeepsEqualValuedRunBeforeNewTransaction) {
  Waveform w(bit(Logic::k0));
  w.schedule({3, 1}, bit(Logic::k1), true, {0, 0});  // transport, survives?
  // Inertial '1' at 6 with window (1,6): the '1' at 3 has the same value as
  // the new transaction and immediately precedes it -> kept.
  w.schedule({6, 1}, bit(Logic::k1), false, {1, 0});
  EXPECT_EQ(w.pending().size(), 2u);
}

TEST(Waveform, InertialDeletesOlderThanKeptRun) {
  Waveform w(bit(Logic::k0));
  w.schedule({2, 1}, bit(Logic::k0), true, {0, 0});
  w.schedule({3, 1}, bit(Logic::k1), true, {0, 0});
  // Inertial '1' at 6, window (1,6): keep the '1' at 3 (same value,
  // adjacent), delete the '0' at 2 (older than the kept run).
  w.schedule({6, 1}, bit(Logic::k1), false, {1, 0});
  ASSERT_EQ(w.pending().size(), 2u);
  EXPECT_EQ(w.pending()[0].maturity, (VirtualTime{3, 1}));
  EXPECT_EQ(w.pending()[1].maturity, (VirtualTime{6, 1}));
}

TEST(Waveform, EqualMaturityReplaces) {
  Waveform w(bit(Logic::k0));
  w.schedule({5, 1}, bit(Logic::k1), false, {0, 0});
  w.schedule({5, 1}, bit(Logic::k0), false, {0, 0});
  ASSERT_EQ(w.pending().size(), 1u);
  EXPECT_EQ(w.pending().front().value.scalar(), Logic::k0);
}

TEST(Waveform, DeltaDelayTransactions) {
  // Zero-delay assignments mature in the next phase of the same pt.
  Waveform w(bit(Logic::k0));
  w.schedule({7, 4}, bit(Logic::k1), false, {7, 3});
  EXPECT_FALSE(w.apply_matured({7, 3}));
  EXPECT_TRUE(w.apply_matured({7, 4}));
}

TEST(Waveform, ApplyMaturedTakesLastOfSeveral) {
  Waveform w(bit(Logic::k0));
  w.schedule({2, 1}, bit(Logic::k1), true, {0, 0});
  w.schedule({3, 1}, bit(Logic::k0), true, {0, 0});
  w.schedule({4, 1}, bit(Logic::k1), true, {0, 0});
  EXPECT_TRUE(w.apply_matured({10, 1}));
  EXPECT_EQ(w.driving_value().scalar(), Logic::k1);
  EXPECT_TRUE(w.pending().empty());
}

}  // namespace
}  // namespace vsim::vhdl
