// Unit tests for the IEEE 1164 value system.
#include <gtest/gtest.h>

#include "common/logic.h"

namespace vsim {
namespace {

TEST(Logic, CharRoundTrip) {
  const char* chars = "UX01ZWLH-";
  for (int i = 0; i < kNumLogic; ++i) {
    const Logic v = static_cast<Logic>(i);
    EXPECT_EQ(to_char(v), chars[i]);
    EXPECT_EQ(logic_from_char(chars[i]), v);
  }
  EXPECT_EQ(logic_from_char('q'), Logic::kX);
}

TEST(Logic, ResolutionIdentityAndDominance) {
  // Z is the identity of resolution (for non-U operands).
  for (Logic v : {Logic::kX, Logic::k0, Logic::k1, Logic::kW, Logic::kL,
                  Logic::kH}) {
    EXPECT_EQ(resolve(v, Logic::kZ), v);
    EXPECT_EQ(resolve(Logic::kZ, v), v);
  }
  // U dominates everything.
  for (int i = 0; i < kNumLogic; ++i) {
    EXPECT_EQ(resolve(Logic::kU, static_cast<Logic>(i)), Logic::kU);
    EXPECT_EQ(resolve(static_cast<Logic>(i), Logic::kU), Logic::kU);
  }
  // Conflicting strong drivers give X.
  EXPECT_EQ(resolve(Logic::k0, Logic::k1), Logic::kX);
  // Strong beats weak.
  EXPECT_EQ(resolve(Logic::k0, Logic::kH), Logic::k0);
  EXPECT_EQ(resolve(Logic::k1, Logic::kL), Logic::k1);
  // Conflicting weak drivers give W.
  EXPECT_EQ(resolve(Logic::kL, Logic::kH), Logic::kW);
}

TEST(Logic, ResolutionIsCommutativeAndAssociative) {
  for (int a = 0; a < kNumLogic; ++a) {
    for (int b = 0; b < kNumLogic; ++b) {
      const Logic la = static_cast<Logic>(a), lb = static_cast<Logic>(b);
      EXPECT_EQ(resolve(la, lb), resolve(lb, la));
      for (int c = 0; c < kNumLogic; ++c) {
        const Logic lc = static_cast<Logic>(c);
        EXPECT_EQ(resolve(resolve(la, lb), lc), resolve(la, resolve(lb, lc)))
            << to_char(la) << to_char(lb) << to_char(lc);
      }
    }
  }
}

TEST(Logic, OperatorsOn01) {
  EXPECT_EQ(logic_and(Logic::k1, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_and(Logic::k1, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_or(Logic::k0, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_or(Logic::k0, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::k1), Logic::k0);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::kL), Logic::k1);  // weak 0 negates to 1
}

TEST(Logic, OperatorsDominantValues) {
  // 0 dominates AND; 1 dominates OR, regardless of the unknown operand.
  for (int i = 0; i < kNumLogic; ++i) {
    const Logic v = static_cast<Logic>(i);
    EXPECT_EQ(logic_and(Logic::k0, v), Logic::k0);
    EXPECT_EQ(logic_and(v, Logic::k0), Logic::k0);
    EXPECT_EQ(logic_or(Logic::k1, v), Logic::k1);
    EXPECT_EQ(logic_or(v, Logic::k1), Logic::k1);
  }
  EXPECT_EQ(logic_and(Logic::kX, Logic::k1), Logic::kX);
  EXPECT_EQ(logic_xor(Logic::kZ, Logic::k1), Logic::kX);
}

TEST(Logic, ToX01) {
  EXPECT_EQ(to_x01(Logic::kL), Logic::k0);
  EXPECT_EQ(to_x01(Logic::kH), Logic::k1);
  EXPECT_EQ(to_x01(Logic::kZ), Logic::kX);
  EXPECT_EQ(to_x01(Logic::kU), Logic::kX);
  EXPECT_EQ(to_x01(Logic::k0), Logic::k0);
}

TEST(LogicVector, StringRoundTrip) {
  const LogicVector v = LogicVector::from_string("01ZXUWLH-");
  EXPECT_EQ(v.size(), 9u);
  EXPECT_EQ(v.str(), "01ZXUWLH-");
}

TEST(LogicVector, UintRoundTrip) {
  for (std::uint64_t x : {0ull, 1ull, 5ull, 170ull, 255ull}) {
    const LogicVector v = LogicVector::from_uint(x, 8);
    const auto r = v.to_uint();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, x);
  }
  LogicVector v = LogicVector::from_uint(5, 4);
  v.set(2, Logic::kX);
  EXPECT_FALSE(v.to_uint().ok);
  // Weak values still convert.
  LogicVector w = LogicVector::from_string("HL");
  const auto r = w.to_uint();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 2u);
}

TEST(LogicVector, HeapStorageBeyondInlineCapacity) {
  LogicVector big(100, Logic::k0);
  EXPECT_EQ(big.size(), 100u);
  big.set(99, Logic::k1);
  EXPECT_EQ(big.at(99), Logic::k1);
  EXPECT_EQ(big.at(0), Logic::k0);
  LogicVector copy = big;
  EXPECT_EQ(copy, big);
  copy.set(0, Logic::k1);
  EXPECT_NE(copy, big);
}

TEST(LogicVector, ElementwiseResolve) {
  const LogicVector a = LogicVector::from_string("01Z");
  const LogicVector b = LogicVector::from_string("Z1Z");
  EXPECT_EQ(resolve(a, b).str(), "01Z");
}

TEST(LogicVector, EqualityRequiresSameSize) {
  EXPECT_NE(LogicVector::from_string("01"), LogicVector::from_string("010"));
  EXPECT_EQ(LogicVector{}, LogicVector{});
}

}  // namespace
}  // namespace vsim
