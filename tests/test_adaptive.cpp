// Unit suite for the rate-based adaptation controller (pdes/adaptive.h):
// table-driven transition rules over synthetic windows, EWMA convergence,
// ping-pong damping (each oscillation takes at least twice as long as the
// last), the per-round demotion-fraction cap, worker-count threshold
// scaling, policy validation (including the shift-saturation satellite),
// and decision determinism across identical replays.
//
// Windows are staged via LpRuntime::inject_window and folded by the
// controller round (or an explicit fold_window), exactly as a live GVT
// round would; the engine-driven tests (real stragglers, real blocked
// polls) live in test_pdes_protocol.cpp and the oracle-equivalence gate in
// test_fuzz_equivalence.cpp.  The AdaptSmoke suite at the bottom is the
// regression gate for the IIR collapse itself (ci.sh runs it by label).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bench/harness.h"
#include "circuits/iir.h"
#include "pdes/adaptive.h"
#include "pdes/config.h"
#include "pdes/lp_runtime.h"
#include "vhdl/kernel.h"

namespace vsim::pdes {
namespace {

struct NullState final : LpState {};

class StubLp : public LogicalProcess {
 public:
  StubLp() : LogicalProcess("stub") {}
  void simulate(const Event&, SimContext&) override {}
  std::unique_ptr<LpState> save_state() const override {
    return std::make_unique<NullState>();
  }
  void restore_state(const LpState&) override {}
};

class AdaptiveTest : public testing::Test {
 protected:
  LpRuntime make(SyncMode mode) {
    return LpRuntime(&lp_, OrderingMode::kArbitrary,
                     ConservativeStrategy::kGlobalSync, mode,
                     /*max_history=*/0);
  }

  // One engine-style round over a single LP: fresh controller, budget for a
  // scope of one.
  AdaptDecision round(LpRuntime& rt, const AdaptPolicy& p,
                      std::size_t workers = 1) {
    AdaptController ctrl(p, workers);
    ctrl.begin_round(1);
    return ctrl.adapt(rt);
  }

  StubLp lp_;
};

AdaptPolicy base_policy() {
  AdaptPolicy p;
  p.min_window_events = 8;
  p.rollback_rate_high = 0.5;
  p.rollback_rate_low = 0.1;
  p.rate_alpha = 0.5;
  p.p_headroom = 0.05;
  p.min_decision_windows = 3;
  p.max_demote_fraction = 0.125;
  p.pin_stall_windows = 3;
  p.promotion_backoff_cap = 4;
  return p;
}

// ---- table-driven transitions over synthetic windows ----

TEST_F(AdaptiveTest, TransitionTable) {
  struct Window {
    std::uint64_t events, undone, blocked, stalls;
  };
  struct Case {
    const char* name;
    SyncMode start;
    std::vector<Window> windows;   // all but the last are folded quietly
    AdaptAction want;              // decision at the last window's round
    SyncMode want_mode;
  };
  const AdaptPolicy p = base_policy();
  const Case cases[] = {
      {"healthy optimistic LP stays put",
       SyncMode::kOptimistic,
       {{100, 0, 0, 0}, {100, 0, 0, 0}, {100, 0, 0, 0}},
       AdaptAction::kNone,
       SyncMode::kOptimistic},
      {"sustained waste above threshold demotes",
       SyncMode::kOptimistic,
       {{100, 80, 0, 0}, {100, 80, 0, 0}, {100, 80, 0, 0}},
       AdaptAction::kDemote,
       SyncMode::kConservative},
      {"one bursty window cannot demote (min_decision_windows)",
       SyncMode::kOptimistic,
       {{100, 100, 0, 0}},
       AdaptAction::kNone,
       SyncMode::kOptimistic},
      {"a burst diluted by clean windows cannot demote (EWMA)",
       SyncMode::kOptimistic,
       {{100, 100, 0, 0}, {100, 0, 0, 0}, {100, 0, 0, 0}, {100, 0, 0, 0}},
       AdaptAction::kNone,
       SyncMode::kOptimistic},
      {"too little evidence cannot demote (min_window_events)",
       SyncMode::kOptimistic,
       {{2, 2, 0, 0}, {2, 2, 0, 0}, {2, 2, 0, 0}},
       AdaptAction::kNone,
       SyncMode::kOptimistic},
      {"persistent memory stalls pin",
       SyncMode::kOptimistic,
       {{0, 0, 0, 8}, {0, 0, 0, 8}, {0, 0, 0, 8}},
       AdaptAction::kPin,
       SyncMode::kConservative},
      {"interrupted stall streak does not pin",
       SyncMode::kOptimistic,
       {{0, 0, 0, 8}, {0, 0, 0, 8}, {100, 0, 0, 0}, {0, 0, 0, 8}},
       AdaptAction::kNone,
       SyncMode::kOptimistic},
      {"starved conservative LP promotes on cumulative blocked evidence",
       SyncMode::kConservative,
       {{0, 0, 3, 0}, {0, 0, 3, 0}, {0, 0, 3, 0}},
       AdaptAction::kPromote,
       SyncMode::kOptimistic},
      {"active conservative LP with clean record promotes",
       SyncMode::kConservative,
       {{50, 0, 4, 0}, {50, 0, 4, 0}},
       AdaptAction::kPromote,
       SyncMode::kOptimistic},
      {"active conservative LP with dirty record stays conservative",
       SyncMode::kConservative,
       {{50, 25, 4, 0}, {50, 25, 4, 0}},
       AdaptAction::kNone,
       SyncMode::kConservative},
      {"unblocked conservative LP stays conservative",
       SyncMode::kConservative,
       {{50, 0, 0, 0}, {50, 0, 0, 0}, {50, 0, 0, 0}},
       AdaptAction::kNone,
       SyncMode::kConservative},
  };

  for (const Case& c : cases) {
    auto rt = make(c.start);
    AdaptDecision last;
    for (std::size_t i = 0; i < c.windows.size(); ++i) {
      const Window& w = c.windows[i];
      // Every window runs through a full controller round (the controller
      // folds it), so intermediate rounds are genuine no-op decisions; the
      // last round's decision is the one the table pins.
      rt.inject_window(w.events, w.undone, w.blocked, w.stalls);
      last = round(rt, p);
      if (i + 1 < c.windows.size() && last.action != AdaptAction::kNone) {
        break;  // table rows are written so this does not happen
      }
    }
    EXPECT_EQ(last.action, c.want) << c.name;
    EXPECT_EQ(rt.mode(), c.want_mode) << c.name;
  }
}

// ---- EWMA convergence ----

TEST_F(AdaptiveTest, EwmaConvergesGeometrically) {
  const AdaptPolicy p = base_policy();  // alpha = 0.5
  auto rt = make(SyncMode::kOptimistic);
  auto fold = [&](std::uint64_t events, std::uint64_t undone) {
    rt.inject_window(events, undone, 0, 0);
    rt.fold_window(p);
  };
  // First active window seeds the EWMA directly.
  fold(100, 100);
  EXPECT_DOUBLE_EQ(rt.waste_rate(), 1.0);
  // A constant 0-waste signal halves the distance every window.
  double expect = 1.0;
  for (int i = 0; i < 6; ++i) {
    fold(100, 0);
    expect *= 0.5;
    EXPECT_NEAR(rt.waste_rate(), expect, 1e-12) << "window " << i;
  }
  // And converges to the signal: a long clean run drives the rate to ~0.
  for (int i = 0; i < 50; ++i) fold(100, 0);
  EXPECT_LT(rt.waste_rate(), 1e-9);
  // Idle windows (no events) leave the EWMA untouched.
  const double before = rt.waste_rate();
  rt.inject_window(0, 0, 5, 0);
  rt.fold_window(p);
  EXPECT_DOUBLE_EQ(rt.waste_rate(), before);
}

TEST_F(AdaptiveTest, WasteFractionIsCappedAtOne) {
  const AdaptPolicy p = base_policy();
  auto rt = make(SyncMode::kOptimistic);
  // A cascade can undo more events than the window processed (undone from
  // history built in earlier windows); the per-window fraction clamps.
  rt.inject_window(10, 1000, 0, 0);
  rt.fold_window(p);
  EXPECT_DOUBLE_EQ(rt.waste_rate(), 1.0);
}

// ---- ping-pong damping: oscillation period doubles every cycle ----

TEST_F(AdaptiveTest, PingPongFrequencyHalves) {
  AdaptPolicy p = base_policy();
  p.min_decision_windows = 1;
  p.rate_alpha = 1.0;  // single-window decisions: worst case for ping-pong
  auto rt = make(SyncMode::kOptimistic);

  // An adversarial workload: while optimistic the LP wastes everything
  // (demote); while conservative it starves with a constant blocked-poll
  // rate per round (promote once the cumulative evidence clears).  Count
  // rounds spent conservative in each cycle: each demotion doubles it.
  std::vector<int> rounds_conservative;
  for (int cycle = 0; cycle < 4; ++cycle) {
    // Optimistic phase: all work wasted until the demotion lands.
    int guard = 0;
    while (rt.mode() == SyncMode::kOptimistic) {
      rt.inject_window(100, 100, 0, 0);
      round(rt, p);
      ASSERT_LT(++guard, 100);
    }
    // Conservative phase: starve at 8 blocked polls per round.
    int rounds = 0;
    while (rt.mode() == SyncMode::kConservative) {
      rt.inject_window(0, 0, 8, 0);
      round(rt, p);
      ASSERT_LT(++rounds, 1000);
    }
    rounds_conservative.push_back(rounds);
  }
  // min_window_events = 8, 8 blocked/round: cycle k needs 2^k rounds.
  for (std::size_t i = 1; i < rounds_conservative.size(); ++i) {
    EXPECT_GE(rounds_conservative[i], 2 * rounds_conservative[i - 1])
        << "cycle " << i;
  }
  // The backoff saturates at promotion_backoff_cap doublings, so the LP is
  // never trapped forever.
  EXPECT_LE(rounds_conservative.back(), 1 << (p.promotion_backoff_cap + 1));
}

// ---- per-round demotion budget (avalanche guard) ----

TEST_F(AdaptiveTest, DemotionBudgetBoundsPerRoundDemotions) {
  AdaptPolicy p = base_policy();
  p.min_decision_windows = 1;
  p.rate_alpha = 1.0;
  p.max_demote_fraction = 0.25;

  // 16 LPs, all demotion-worthy.  ceil(0.25 * 16) = 4 may flip per round;
  // the rest are deferred and flip over subsequent rounds.
  std::vector<LpRuntime> lps;
  lps.reserve(16);
  for (int i = 0; i < 16; ++i) lps.push_back(make(SyncMode::kOptimistic));
  for (auto& rt : lps) rt.inject_window(100, 100, 0, 0);

  AdaptController ctrl(p, 1);
  int demoted = 0, deferred = 0;
  ctrl.begin_round(lps.size());
  for (auto& rt : lps) {
    const AdaptDecision d = ctrl.adapt(rt);
    if (d.action == AdaptAction::kDemote) ++demoted;
    if (d.action == AdaptAction::kDeferred) ++deferred;
  }
  EXPECT_EQ(demoted, 4);
  EXPECT_EQ(deferred, 12);

  // Deferral consumes no evidence: the next round demotes the next slice.
  for (auto& rt : lps) rt.inject_window(100, 100, 0, 0);
  ctrl.begin_round(lps.size());
  demoted = 0;
  for (auto& rt : lps) {
    if (ctrl.adapt(rt).action == AdaptAction::kDemote) ++demoted;
  }
  EXPECT_EQ(demoted, 4);

  // A tiny scope still gets a budget of one (never a frozen policy).
  AdaptPolicy small = p;
  small.max_demote_fraction = 0.01;
  AdaptController tiny(small, 1);
  tiny.begin_round(3);
  EXPECT_EQ(tiny.demote_budget(), 1u);
}

// ---- worker-count threshold scaling ----

TEST_F(AdaptiveTest, DemotionThresholdScalesWithWorkerCount) {
  const AdaptPolicy p = base_policy();
  const AdaptController p1(p, 1);
  const AdaptController p16(p, 16);
  EXPECT_DOUBLE_EQ(p1.high_threshold(), p.rollback_rate_high);
  EXPECT_DOUBLE_EQ(p16.high_threshold(),
                   p.rollback_rate_high * (1.0 + p.p_headroom * 15.0));

  // A waste rate that demotes at P=1 survives at P=16.
  AdaptPolicy fast = p;
  fast.min_decision_windows = 1;
  fast.rate_alpha = 1.0;
  const double waste =
      (p1.high_threshold() + p16.high_threshold()) / 2.0;  // between the two
  for (const std::size_t workers : {std::size_t{1}, std::size_t{16}}) {
    auto rt = make(SyncMode::kOptimistic);
    rt.inject_window(100, static_cast<std::uint64_t>(std::lround(waste * 100)),
                     0, 0);
    const AdaptDecision d = round(rt, fast, workers);
    if (workers == 1) {
      EXPECT_EQ(d.action, AdaptAction::kDemote);
    } else {
      EXPECT_EQ(d.action, AdaptAction::kNone);
    }
  }
}

// ---- promotion backoff saturation (UB satellite) ----

TEST_F(AdaptiveTest, PromotionEvidenceSaturatesInsteadOfWrapping) {
  AdaptPolicy p = base_policy();
  p.promotion_backoff_cap = 31;  // the largest valid cap
  ASSERT_EQ(validate(p), std::nullopt);
  const AdaptController ctrl(p, 1);
  // Any demotion count beyond the cap clamps to cap doublings; no shift
  // ever reaches 32 bits, so the threshold grows monotonically and never
  // wraps to something small.
  const std::uint64_t at_cap = ctrl.promotion_evidence(31);
  EXPECT_EQ(at_cap, static_cast<std::uint64_t>(p.min_window_events) << 31);
  EXPECT_EQ(ctrl.promotion_evidence(32), at_cap);
  EXPECT_EQ(ctrl.promotion_evidence(1'000'000), at_cap);
  std::uint64_t prev = 0;
  for (std::uint64_t d = 0; d <= 40; ++d) {
    const std::uint64_t need = ctrl.promotion_evidence(d);
    EXPECT_GE(need, prev) << "demotions " << d;
    prev = need;
  }
}

TEST_F(AdaptiveTest, PolicyValidationRejectsBadFields) {
  struct Case {
    const char* field;
    void (*mutate)(AdaptPolicy&);
  };
  const Case cases[] = {
      {"adapt.promotion_backoff_cap",
       [](AdaptPolicy& p) { p.promotion_backoff_cap = 32; }},
      {"adapt.rollback_rate_high",
       [](AdaptPolicy& p) { p.rollback_rate_high = 0.0; }},
      {"adapt.rollback_rate_low",
       [](AdaptPolicy& p) { p.rollback_rate_low = p.rollback_rate_high + 1; }},
      {"adapt.min_window_events",
       [](AdaptPolicy& p) { p.min_window_events = 0; }},
      {"adapt.rate_alpha", [](AdaptPolicy& p) { p.rate_alpha = 0.0; }},
      {"adapt.rate_alpha", [](AdaptPolicy& p) { p.rate_alpha = 1.5; }},
      {"adapt.p_headroom", [](AdaptPolicy& p) { p.p_headroom = -0.1; }},
      {"adapt.min_decision_windows",
       [](AdaptPolicy& p) { p.min_decision_windows = 0; }},
      {"adapt.max_demote_fraction",
       [](AdaptPolicy& p) { p.max_demote_fraction = 0.0; }},
      {"adapt.max_demote_fraction",
       [](AdaptPolicy& p) { p.max_demote_fraction = 1.5; }},
      {"adapt.pin_stall_windows",
       [](AdaptPolicy& p) { p.pin_stall_windows = 0; }},
  };
  EXPECT_EQ(validate(base_policy()), std::nullopt);
  for (const Case& c : cases) {
    AdaptPolicy p = base_policy();
    c.mutate(p);
    const auto err = validate(p);
    ASSERT_TRUE(err.has_value()) << c.field;
    EXPECT_EQ(err->field, c.field);
  }
  // The policy error surfaces through full-run-config validation too, so an
  // engine run with a bad cap aborts structured instead of shifting into UB.
  RunConfig rc;
  rc.adapt.promotion_backoff_cap = 40;
  const auto err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "adapt.promotion_backoff_cap");
}

// ---- decision determinism across identical replays ----

TEST_F(AdaptiveTest, DecisionsAreDeterministicAcrossReplays) {
  AdaptPolicy p = base_policy();
  p.min_decision_windows = 2;
  p.max_demote_fraction = 0.25;

  // A pseudo-random but fixed workload over 8 LPs and 40 rounds; replaying
  // it must reproduce the exact same decision sequence (the controller is a
  // pure function of the per-LP counters and sweep order).
  auto run_replay = [&]() {
    std::vector<LpRuntime> lps;
    lps.reserve(8);
    for (int i = 0; i < 8; ++i)
      lps.push_back(make(i % 2 ? SyncMode::kConservative
                               : SyncMode::kOptimistic));
    AdaptController ctrl(p, 4);
    std::vector<std::uint8_t> decisions;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int r = 0; r < 40; ++r) {
      ctrl.begin_round(lps.size());
      for (auto& rt : lps) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t events = x % 64;
        const std::uint64_t undone = (x >> 8) % (events + 1);
        const std::uint64_t blocked = (x >> 16) % 8;
        rt.inject_window(events, undone, blocked, 0);
        decisions.push_back(
            static_cast<std::uint8_t>(ctrl.adapt(rt).action));
      }
    }
    return decisions;
  };
  const auto a = run_replay();
  const auto b = run_replay();
  EXPECT_EQ(a, b);
  // And the workload is non-trivial: some decision fired.
  bool any = false;
  for (const std::uint8_t d : a)
    any |= d != static_cast<std::uint8_t>(AdaptAction::kNone);
  EXPECT_TRUE(any);
}

// ---- pinned short-circuit (satellite) ----

TEST_F(AdaptiveTest, PinnedLpShortCircuitsBeforeRateMath) {
  const AdaptPolicy p = base_policy();
  auto rt = make(SyncMode::kOptimistic);
  rt.pin_conservative();
  ASSERT_TRUE(rt.pinned_conservative());
  // Arbitrary window garbage accumulates but is never folded or reset: the
  // controller returns before touching it.
  rt.inject_window(0, 0, 100, 0);
  for (int i = 0; i < 5; ++i) rt.note_blocked();
  const AdaptDecision d = round(rt, p);
  EXPECT_EQ(d.action, AdaptAction::kNone);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
  EXPECT_EQ(rt.window_blocked(), 105u);  // no reset_window churn
  EXPECT_EQ(rt.blocked_since_flip(), 0u);  // never folded
}

// ---- IIR collapse regression (adapt_smoke label in ci.sh) ----
//
// The machine model is deterministic, so this encodes the Fig. 8 acceptance
// bar directly: dynamic at P=16 on the Gray-Markel IIR must land within 80%
// of all-optimistic.  Before the rate-based controller, dynamic collapsed
// to ~26% of optimistic here (avalanche demotion on the feedback lattice).
TEST(AdaptSmoke, IirDynamicTracksOptimisticAtP16) {
  const PhysTime until = 2000;  // 5 sample clocks: enough to trip the
                                // collapse, short enough for a smoke test
  bench::BuildFn build = [] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::IirParams params;
    circuits::build_iir(*b.design, params);
    b.design->finalize();
    return b;
  };

  auto run = [&](Configuration config) {
    RunConfig rc;
    rc.num_workers = 16;
    rc.configuration = config;
    rc.until = until;
    rc.max_history = 128;
    return bench::run_machine(build, rc);
  };
  const RunStats opt = run(Configuration::kAllOptimistic);
  const RunStats dyn = run(Configuration::kDynamic);
  ASSERT_FALSE(opt.deadlocked);
  ASSERT_FALSE(dyn.deadlocked);
  // Same committed work (adaptation never changes results)...
  EXPECT_EQ(dyn.total_committed(), opt.total_committed());
  // ...and within the acceptance bar on simulated makespan.
  EXPECT_GT(opt.makespan, 0.0);
  EXPECT_LE(dyn.makespan, opt.makespan / 0.8)
      << "dynamic speedup fell below 0.8x all-optimistic";
}

}  // namespace
}  // namespace vsim::pdes
