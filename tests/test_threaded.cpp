// Threaded-engine stress tests: repeated runs across thread counts and
// protocols on a non-trivial circuit, all trace-checked against the
// sequential oracle (races would show up as trace diffs, missing commits
// or hangs), plus corner tests for the batch-drained MPSC mailbox.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "circuits/dct.h"
#include "circuits/fsm.h"
#include "partition/partition.h"
#include "pdes/mailbox.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "watchdog.h"
#include "vhdl/monitor.h"

namespace vsim::pdes {
namespace {

struct Built {
  std::unique_ptr<LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

Built build(unsigned seed) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = 4;
  p.width = 5;
  p.input_seed = seed;
  circuits::build_fsm(*b.design, p);
  const auto c = circuits::build_fsm(*b.design, [] {
    circuits::FsmParams q;
    q.lanes = 1;
    q.width = 3;
    q.input_seed = 99;
    return q;
  }());
  (void)c;
  std::vector<vhdl::SignalId> probes;
  for (std::size_t i = 0; i < b.design->num_signals(); i += 17)
    probes.push_back(static_cast<vhdl::SignalId>(i));
  b.recorder = std::make_unique<vhdl::TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

TEST(Threaded, StressAcrossSeedsAndThreadCounts) {
  for (unsigned seed : {11u, 23u}) {
    Built ref = build(seed);
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(400);

    for (std::size_t workers : {2u, 3u, 5u}) {
      for (Configuration c :
           {Configuration::kAllOptimistic, Configuration::kDynamic}) {
        Built par = build(seed);
        RunConfig rc;
        rc.num_workers = workers;
        rc.configuration = c;
        rc.until = 400;
        rc.gvt_interval = 24;
        ThreadedEngine eng(
            *par.graph, partition::round_robin(par.graph->size(), workers),
            rc);
        eng.set_commit_hook(par.recorder->hook());
        const RunStats st = eng.run();
        EXPECT_FALSE(st.deadlocked);
        EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder),
                  "")
            << "seed " << seed << " workers " << workers << " "
            << to_string(c);
      }
    }
  }
}

TEST(Threaded, BipartitePartitionAndMixedConfig) {
  Built ref = build(7);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build(7);
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kMixed;
  rc.until = 400;
  ThreadedEngine eng(*par.graph, partition::bipartite_bfs(*par.graph, 3),
                     rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

TEST(Threaded, MemoryCappedOptimisticTerminates) {
  Built ref = build(3);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build(3);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllOptimistic;
  rc.max_history = 16;
  rc.until = 400;
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), 4), rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  for (const auto& lp : st.per_lp) EXPECT_LE(lp.max_history, 16u);
}

TEST(Threaded, GateLevelDctRunsClean) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::DctParams p;
  p.n = 2;
  p.width = 4;
  circuits::build_dct(*b.design, p);
  b.design->finalize();

  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = 2000;
  ThreadedEngine eng(*b.graph, partition::round_robin(b.graph->size(), 4),
                     rc);
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_GT(st.total_committed(), 1000u);
}

// ---- batch-drained MPSC mailbox corner cases ----

TEST(BatchMailbox, MultiProducerBatchesKeepPerProducerFifo) {
  testutil::Watchdog wd("BatchMailbox.MultiProducerBatchesKeepPerProducerFifo",
                        std::chrono::seconds(60));
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPacketsEach = 2000;
  BatchMailbox mb(kProducers);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::vector<Packet> buf;
      std::uint64_t seq = 0;
      // Varying batch sizes (1..7) so publishes interleave irregularly.
      while (seq < kPacketsEach) {
        const std::uint64_t n = 1 + (seq * (p + 3)) % 7;
        for (std::uint64_t i = 0; i < n && seq < kPacketsEach; ++i) {
          Packet pkt;
          pkt.src = p;
          pkt.dst = 0;
          pkt.ev.uid = seq++;
          buf.push_back(pkt);
        }
        mb.push_batch(p, buf);
        EXPECT_TRUE(buf.empty());
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Single consumer drains concurrently with the producers.
  std::vector<std::uint64_t> next_uid(kProducers, 0);
  std::uint64_t total = 0;
  std::vector<Packet> out;
  while (total < kProducers * kPacketsEach) {
    out.clear();
    total += mb.drain(out);
    for (const Packet& pkt : out) {
      ASSERT_LT(pkt.src, kProducers);
      // Per-producer FIFO: uids from one producer arrive in push order.
      EXPECT_EQ(pkt.ev.uid, next_uid[pkt.src]++);
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total, kProducers * kPacketsEach);
  EXPECT_TRUE(mb.empty());
}

TEST(BatchMailbox, FlushOrderPreservesAntiMessageBeforeReplacementSend) {
  // A rollback cancels a send and a later re-execution emits a replacement
  // with the same uid.  Both ride the batched path: the anti-message is
  // published in an earlier batch than the replacement, and the drain must
  // replay them in publish order -- if the replacement ever overtook the
  // anti-message, the receiver would annihilate the NEW positive instead.
  BatchMailbox mb(2);
  std::vector<Packet> buf;
  Packet anti;
  anti.src = 1;
  anti.ev.uid = 7;
  anti.ev.negative = true;
  buf.push_back(anti);
  mb.push_batch(1, buf);
  Packet replacement;
  replacement.src = 1;
  replacement.ev.uid = 7;
  replacement.ev.negative = false;
  buf.push_back(replacement);
  mb.push_batch(1, buf);

  std::vector<Packet> out;
  ASSERT_EQ(mb.drain(out), 2u);
  EXPECT_TRUE(out[0].ev.negative);
  EXPECT_FALSE(out[1].ev.negative);
}

TEST(Threaded, DeliveryRacingCrashStopWorker) {
  // Batches published TO a worker that crash-stops mid-run are in flight
  // when recovery clears every inbox and outbox; the recovered run must
  // still be bit-identical to the oracle.  (Before the overhaul this
  // exercised the locked queue clear; now it covers BatchMailbox::clear
  // plus discarding unflushed producer buffers.)
  testutil::Watchdog wd("Threaded.DeliveryRacingCrashStopWorker",
                        std::chrono::seconds(120));
  Built ref = build(13);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build(13);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 400;
  rc.gvt_interval = 24;
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 60});
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), 4), rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

TEST(Threaded, DrainUntilQuietWithNonEmptyProducerBuffers) {
  // gvt_interval = 1: every processed event forces a synchronisation
  // round, so rounds constantly begin with batches still in flight in
  // destination inboxes, and stragglers delivered during a drain pass
  // trigger rollbacks whose anti-messages land in producer outboxes
  // mid-round.  Each drain pass must flush those buffers and count the
  // moved packets, or GVT would be computed over a network that silently
  // still holds messages.
  testutil::Watchdog wd("Threaded.DrainUntilQuietWithNonEmptyProducerBuffers",
                        std::chrono::seconds(120));
  Built ref = build(17);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(300);

  Built par = build(17);
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 300;
  rc.gvt_interval = 1;
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), 3), rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  // The batched path actually carried the traffic.
  EXPECT_GT(st.metrics.counter(obs::Metric::kMailboxBatches), 0u);
  const obs::Histogram& bs = st.metrics.histogram(obs::Hist::kBatchSize);
  EXPECT_GT(bs.count, 0u);
  EXPECT_GE(bs.max, 1.0);
  EXPECT_GT(st.metrics.counter(obs::Metric::kQueueOps), 0u);
}

}  // namespace
}  // namespace vsim::pdes
