// Threaded-engine stress tests: repeated runs across thread counts and
// protocols on a non-trivial circuit, all trace-checked against the
// sequential oracle (races would show up as trace diffs, missing commits
// or hangs).
#include <gtest/gtest.h>

#include "circuits/dct.h"
#include "circuits/fsm.h"
#include "partition/partition.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"

namespace vsim::pdes {
namespace {

struct Built {
  std::unique_ptr<LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

Built build(unsigned seed) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = 4;
  p.width = 5;
  p.input_seed = seed;
  circuits::build_fsm(*b.design, p);
  const auto c = circuits::build_fsm(*b.design, [] {
    circuits::FsmParams q;
    q.lanes = 1;
    q.width = 3;
    q.input_seed = 99;
    return q;
  }());
  (void)c;
  std::vector<vhdl::SignalId> probes;
  for (std::size_t i = 0; i < b.design->num_signals(); i += 17)
    probes.push_back(static_cast<vhdl::SignalId>(i));
  b.recorder = std::make_unique<vhdl::TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

TEST(Threaded, StressAcrossSeedsAndThreadCounts) {
  for (unsigned seed : {11u, 23u}) {
    Built ref = build(seed);
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(400);

    for (std::size_t workers : {2u, 3u, 5u}) {
      for (Configuration c :
           {Configuration::kAllOptimistic, Configuration::kDynamic}) {
        Built par = build(seed);
        RunConfig rc;
        rc.num_workers = workers;
        rc.configuration = c;
        rc.until = 400;
        rc.gvt_interval = 24;
        ThreadedEngine eng(
            *par.graph, partition::round_robin(par.graph->size(), workers),
            rc);
        eng.set_commit_hook(par.recorder->hook());
        const RunStats st = eng.run();
        EXPECT_FALSE(st.deadlocked);
        EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder),
                  "")
            << "seed " << seed << " workers " << workers << " "
            << to_string(c);
      }
    }
  }
}

TEST(Threaded, BipartitePartitionAndMixedConfig) {
  Built ref = build(7);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build(7);
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kMixed;
  rc.until = 400;
  ThreadedEngine eng(*par.graph, partition::bipartite_bfs(*par.graph, 3),
                     rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

TEST(Threaded, MemoryCappedOptimisticTerminates) {
  Built ref = build(3);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build(3);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllOptimistic;
  rc.max_history = 16;
  rc.until = 400;
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), 4), rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  for (const auto& lp : st.per_lp) EXPECT_LE(lp.max_history, 16u);
}

TEST(Threaded, GateLevelDctRunsClean) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::DctParams p;
  p.n = 2;
  p.width = 4;
  circuits::build_dct(*b.design, p);
  b.design->finalize();

  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = 2000;
  ThreadedEngine eng(*b.graph, partition::round_robin(b.graph->size(), 4),
                     rc);
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_GT(st.total_committed(), 1000u);
}

}  // namespace
}  // namespace vsim::pdes
