// Property-based fuzzing: random synchronous netlists (delta-heavy, mixed
// delays, resolved buses, registered feedback) simulated under random
// protocol configurations must always match the sequential oracle.
//
// The StressMatrix suite at the bottom is the exhaustive determinism gate
// for the hot-path data structures (event_queue.h, mailbox.h): every
// Configuration preset crossed with both OrderingModes, swept over
// VSIM_STRESS_SEEDS seeds (default 6 for the tier-1 run; ci.sh runs the
// full 200-seed sweep via the `stress` ctest label).
#include <gtest/gtest.h>

#include <cstdlib>

#include "circuits/random_circuit.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

namespace vsim {
namespace {

using circuits::RandomCircuitParams;
using pdes::Configuration;
using pdes::RunConfig;

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

Built build(const RandomCircuitParams& p) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  const auto c = circuits::build_random_circuit(*b.design, p);
  b.recorder = std::make_unique<vhdl::TraceRecorder>(*b.design,
                                                     c.observable);
  b.design->finalize();
  return b;
}

class FuzzEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalence, MachineEnginesMatchOracle) {
  RandomCircuitParams p;
  p.seed = GetParam();
  // Vary structure with the seed.
  p.num_gates = 20 + (p.seed * 13) % 40;
  p.num_dffs = 4 + (p.seed * 7) % 8;
  p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);
  const PhysTime until = 400;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  // Configuration derived from the seed.
  const Configuration configs[] = {
      Configuration::kAllOptimistic, Configuration::kAllConservative,
      Configuration::kMixed, Configuration::kDynamic};
  for (std::size_t i = 0; i < 2; ++i) {
    Built par = build(p);
    RunConfig rc;
    rc.num_workers = 2 + (p.seed + i) % 7;
    rc.configuration = configs[(p.seed + i) % 4];
    rc.gvt_interval = 16 + (p.seed % 3) * 24;
    rc.max_history = (p.seed % 2) ? 32 : 0;
    rc.cancellation = (p.seed + i) % 3 == 0
                          ? pdes::CancellationPolicy::kLazy
                          : pdes::CancellationPolicy::kAggressive;
    rc.until = until;
    const auto part =
        (p.seed + i) % 2 ? partition::bipartite_bfs(*par.graph,
                                                    rc.num_workers)
                         : partition::round_robin(par.graph->size(),
                                                  rc.num_workers);
    pdes::MachineEngine eng(*par.graph, part, rc);
    eng.set_commit_hook(par.recorder->hook());
    const auto st = eng.run();
    EXPECT_FALSE(st.deadlocked)
        << "seed " << p.seed << " cfg " << to_string(rc.configuration);
    EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << p.seed << " workers " << rc.num_workers << " cfg "
        << to_string(rc.configuration);
  }
}

TEST_P(FuzzEquivalence, ThreadedEngineMatchesOracle) {
  RandomCircuitParams p;
  p.seed = GetParam() * 1000003;
  p.num_gates = 24 + (p.seed * 11) % 24;
  p.zero_delay_pct = static_cast<int>((p.seed * 31) % 100);
  const PhysTime until = 300;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  Built par = build(p);
  RunConfig rc;
  rc.num_workers = 2 + p.seed % 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  pdes::ThreadedEngine eng(
      *par.graph, partition::round_robin(par.graph->size(), rc.num_workers),
      rc);
  eng.set_commit_hook(par.recorder->hook());
  const auto st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
      << "seed " << p.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         testing::Range<std::uint64_t>(1, 25));

// ---- seed-sweep stress matrix ----

std::uint64_t stress_seeds() {
  if (const char* s = std::getenv("VSIM_STRESS_SEEDS")) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 6;  // tier-1 smoke sweep; CI overrides with 200
}

TEST(StressMatrix, EveryConfigurationAndOrderingMatchesOracleBitExact) {
  const std::uint64_t seeds = stress_seeds();
  testutil::Watchdog wd(
      "StressMatrix.EveryConfigurationAndOrderingMatchesOracleBitExact",
      std::chrono::seconds(120 + 3 * seeds));

  const Configuration configs[] = {
      Configuration::kAllOptimistic, Configuration::kAllConservative,
      Configuration::kMixed, Configuration::kDynamic};
  const pdes::OrderingMode orders[] = {pdes::OrderingMode::kArbitrary,
                                       pdes::OrderingMode::kUserConsistent};
  const PhysTime until = 250;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomCircuitParams p;
    p.seed = seed * 2654435761u;
    p.num_gates = 16 + (p.seed * 13) % 32;
    p.num_dffs = 3 + (p.seed * 7) % 6;
    p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);

    Built ref = build(p);
    pdes::SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(until);

    for (std::size_t ci = 0; ci < 4; ++ci) {
      for (const pdes::OrderingMode ord : orders) {
        Built par = build(p);
        RunConfig rc;
        rc.num_workers = 2 + (seed + ci) % 5;
        rc.configuration = configs[ci];
        rc.ordering = ord;
        // Global-sync keeps every cell live: the random netlists contain
        // zero-delay cycles that starve the null-message strategy's
        // lookahead, and the global safe bound is ordering-agnostic, so
        // user-consistent cells exercise the >=-straggler rollback paths
        // without changing the committed trajectory.
        rc.strategy = pdes::ConservativeStrategy::kGlobalSync;
        rc.gvt_interval = 16 + (seed % 3) * 24;
        rc.max_history = (seed % 2) ? 48 : 0;
        rc.cancellation = (seed + ci) % 3 == 0
                              ? pdes::CancellationPolicy::kLazy
                              : pdes::CancellationPolicy::kAggressive;
        rc.until = until;
        const auto part =
            (seed + ci) % 2
                ? partition::bipartite_bfs(*par.graph, rc.num_workers)
                : partition::round_robin(par.graph->size(), rc.num_workers);
        pdes::MachineEngine eng(*par.graph, part, rc);
        eng.set_commit_hook(par.recorder->hook());
        const auto st = eng.run();
        ASSERT_FALSE(st.deadlocked)
            << "seed " << seed << " cfg " << to_string(rc.configuration)
            << " ordering "
            << (ord == pdes::OrderingMode::kArbitrary ? "arbitrary"
                                                      : "user-consistent");
        ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder),
                  "")
            << "seed " << seed << " workers " << rc.num_workers << " cfg "
            << to_string(rc.configuration) << " ordering "
            << (ord == pdes::OrderingMode::kArbitrary ? "arbitrary"
                                                      : "user-consistent");
      }
    }
  }
}

}  // namespace
}  // namespace vsim
