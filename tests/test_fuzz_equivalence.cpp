// Property-based fuzzing: random synchronous netlists (delta-heavy, mixed
// delays, resolved buses, registered feedback) simulated under random
// protocol configurations must always match the sequential oracle.
//
// The StressMatrix suite at the bottom is the exhaustive determinism gate
// for the hot-path data structures (event_queue.h, mailbox.h): every
// Configuration preset crossed with both OrderingModes, swept over
// VSIM_STRESS_SEEDS seeds (default 6 for the tier-1 run; ci.sh runs the
// full 200-seed sweep via the `stress` ctest label).
#include <gtest/gtest.h>

#include <cstdlib>

#include "circuits/random_circuit.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

namespace vsim {
namespace {

using circuits::RandomCircuitParams;
using pdes::Configuration;
using pdes::RunConfig;

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

Built build(const RandomCircuitParams& p) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  const auto c = circuits::build_random_circuit(*b.design, p);
  b.recorder = std::make_unique<vhdl::TraceRecorder>(*b.design,
                                                     c.observable);
  b.design->finalize();
  return b;
}

class FuzzEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalence, MachineEnginesMatchOracle) {
  RandomCircuitParams p;
  p.seed = GetParam();
  // Vary structure with the seed.
  p.num_gates = 20 + (p.seed * 13) % 40;
  p.num_dffs = 4 + (p.seed * 7) % 8;
  p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);
  const PhysTime until = 400;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  // Configuration derived from the seed.
  const Configuration configs[] = {
      Configuration::kAllOptimistic, Configuration::kAllConservative,
      Configuration::kMixed, Configuration::kDynamic};
  for (std::size_t i = 0; i < 2; ++i) {
    Built par = build(p);
    RunConfig rc;
    rc.num_workers = 2 + (p.seed + i) % 7;
    rc.configuration = configs[(p.seed + i) % 4];
    rc.gvt_interval = 16 + (p.seed % 3) * 24;
    rc.max_history = (p.seed % 2) ? 32 : 0;
    rc.cancellation = (p.seed + i) % 3 == 0
                          ? pdes::CancellationPolicy::kLazy
                          : pdes::CancellationPolicy::kAggressive;
    rc.until = until;
    const auto part =
        (p.seed + i) % 2 ? partition::bipartite_bfs(*par.graph,
                                                    rc.num_workers)
                         : partition::round_robin(par.graph->size(),
                                                  rc.num_workers);
    pdes::MachineEngine eng(*par.graph, part, rc);
    eng.set_commit_hook(par.recorder->hook());
    const auto st = eng.run();
    EXPECT_FALSE(st.deadlocked)
        << "seed " << p.seed << " cfg " << to_string(rc.configuration);
    EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << p.seed << " workers " << rc.num_workers << " cfg "
        << to_string(rc.configuration);
  }
}

TEST_P(FuzzEquivalence, ThreadedEngineMatchesOracle) {
  RandomCircuitParams p;
  p.seed = GetParam() * 1000003;
  p.num_gates = 24 + (p.seed * 11) % 24;
  p.zero_delay_pct = static_cast<int>((p.seed * 31) % 100);
  const PhysTime until = 300;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  Built par = build(p);
  RunConfig rc;
  rc.num_workers = 2 + p.seed % 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  pdes::ThreadedEngine eng(
      *par.graph, partition::round_robin(par.graph->size(), rc.num_workers),
      rc);
  eng.set_commit_hook(par.recorder->hook());
  const auto st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
      << "seed " << p.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         testing::Range<std::uint64_t>(1, 25));

// ---- dynamic load balancing ----
//
// Migration must be invisible to committed results: at a fixed seed, runs
// with rebalancing off and on (aggressive cadence, starting from the
// locality-preserving but load-blind `blocks` placement) all match the
// sequential oracle bit-for-bit.

TEST_P(FuzzEquivalence, RebalancingMachineEngineMatchesOracle) {
  RandomCircuitParams p;
  p.seed = GetParam() * 7919;
  p.num_gates = 20 + (p.seed * 13) % 32;
  p.num_dffs = 3 + (p.seed * 5) % 6;
  p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);
  const PhysTime until = 300;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  for (const bool lb : {false, true}) {
    Built par = build(p);
    RunConfig rc;
    rc.num_workers = 2 + p.seed % 5;
    rc.configuration = Configuration::kMixed;
    rc.gvt_interval = 16 + (p.seed % 3) * 24;
    rc.until = until;
    if (lb) {
      rc.rebalance.period = 2;
      rc.rebalance.imbalance_trigger = 0.05;
      rc.rebalance.max_moves = 3;
    }
    pdes::MachineEngine eng(
        *par.graph, partition::blocks(par.graph->size(), rc.num_workers),
        rc);
    eng.set_commit_hook(par.recorder->hook());
    const auto st = eng.run();
    EXPECT_FALSE(st.deadlocked) << "seed " << p.seed << " lb=" << lb;
    EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << p.seed << " workers " << rc.num_workers
        << " lb=" << lb;
    if (!lb) {
      EXPECT_EQ(st.metrics.counter(obs::Metric::kMigrations), 0u);
    }
  }
}

TEST_P(FuzzEquivalence, RebalancingThreadedEngineMatchesOracle) {
  RandomCircuitParams p;
  p.seed = GetParam() * 104729;
  p.num_gates = 24 + (p.seed * 11) % 24;
  p.zero_delay_pct = static_cast<int>((p.seed * 31) % 100);
  const PhysTime until = 250;

  Built ref = build(p);
  pdes::SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);

  Built par = build(p);
  RunConfig rc;
  rc.num_workers = 2 + p.seed % 3;
  rc.configuration = Configuration::kDynamic;
  rc.rebalance.period = 2;
  rc.rebalance.imbalance_trigger = 0.05;
  rc.rebalance.max_moves = 3;
  rc.until = until;
  pdes::ThreadedEngine eng(
      *par.graph, partition::blocks(par.graph->size(), rc.num_workers), rc);
  eng.set_commit_hook(par.recorder->hook());
  const auto st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
      << "seed " << p.seed;
}

// ---- seed-sweep stress matrix ----

std::uint64_t stress_seeds() {
  if (const char* s = std::getenv("VSIM_STRESS_SEEDS")) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 6;  // tier-1 smoke sweep; CI overrides with 200
}

TEST(StressMatrix, EveryConfigurationAndOrderingMatchesOracleBitExact) {
  const std::uint64_t seeds = stress_seeds();
  testutil::Watchdog wd(
      "StressMatrix.EveryConfigurationAndOrderingMatchesOracleBitExact",
      std::chrono::seconds(120 + 3 * seeds));

  const Configuration configs[] = {
      Configuration::kAllOptimistic, Configuration::kAllConservative,
      Configuration::kMixed, Configuration::kDynamic};
  const pdes::OrderingMode orders[] = {pdes::OrderingMode::kArbitrary,
                                       pdes::OrderingMode::kUserConsistent};
  const PhysTime until = 250;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomCircuitParams p;
    p.seed = seed * 2654435761u;
    p.num_gates = 16 + (p.seed * 13) % 32;
    p.num_dffs = 3 + (p.seed * 7) % 6;
    p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);

    Built ref = build(p);
    pdes::SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(until);

    for (std::size_t ci = 0; ci < 4; ++ci) {
      for (const pdes::OrderingMode ord : orders) {
        Built par = build(p);
        RunConfig rc;
        rc.num_workers = 2 + (seed + ci) % 5;
        rc.configuration = configs[ci];
        rc.ordering = ord;
        // Global-sync keeps every cell live: the random netlists contain
        // zero-delay cycles that starve the null-message strategy's
        // lookahead, and the global safe bound is ordering-agnostic, so
        // user-consistent cells exercise the >=-straggler rollback paths
        // without changing the committed trajectory.
        rc.strategy = pdes::ConservativeStrategy::kGlobalSync;
        rc.gvt_interval = 16 + (seed % 3) * 24;
        rc.max_history = (seed % 2) ? 48 : 0;
        rc.cancellation = (seed + ci) % 3 == 0
                              ? pdes::CancellationPolicy::kLazy
                              : pdes::CancellationPolicy::kAggressive;
        rc.until = until;
        const auto part =
            (seed + ci) % 2
                ? partition::bipartite_bfs(*par.graph, rc.num_workers)
                : partition::round_robin(par.graph->size(), rc.num_workers);
        pdes::MachineEngine eng(*par.graph, part, rc);
        eng.set_commit_hook(par.recorder->hook());
        const auto st = eng.run();
        ASSERT_FALSE(st.deadlocked)
            << "seed " << seed << " cfg " << to_string(rc.configuration)
            << " ordering "
            << (ord == pdes::OrderingMode::kArbitrary ? "arbitrary"
                                                      : "user-consistent");
        ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder),
                  "")
            << "seed " << seed << " workers " << rc.num_workers << " cfg "
            << to_string(rc.configuration) << " ordering "
            << (ord == pdes::OrderingMode::kArbitrary ? "arbitrary"
                                                      : "user-consistent");
      }
    }
  }
}

// Seed-sweep determinism gate for LP migration: every seed runs the machine
// engine with an aggressive rebalance cadence from a deliberately imbalanced
// `blocks` placement and must match the oracle bit-for-bit.  Across the
// sweep at least one run must actually migrate (otherwise the gate would be
// vacuously green), and the imbalance gauge must have been published.
TEST(StressMatrix, RebalancingMatchesOracleBitExact) {
  const std::uint64_t seeds = stress_seeds();
  testutil::Watchdog wd("StressMatrix.RebalancingMatchesOracleBitExact",
                        std::chrono::seconds(120 + 2 * seeds));
  const PhysTime until = 250;
  std::uint64_t total_migrations = 0;
  bool gauge_seen = false;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomCircuitParams p;
    p.seed = seed * 2654435761u + 17;
    p.num_gates = 16 + (p.seed * 13) % 32;
    p.num_dffs = 3 + (p.seed * 7) % 6;
    p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);

    Built ref = build(p);
    pdes::SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(until);

    const Configuration configs[] = {Configuration::kAllOptimistic,
                                     Configuration::kMixed,
                                     Configuration::kDynamic};
    for (std::size_t ci = 0; ci < 3; ++ci) {
      Built par = build(p);
      RunConfig rc;
      rc.num_workers = 2 + (seed + ci) % 5;
      rc.configuration = configs[ci];
      rc.strategy = pdes::ConservativeStrategy::kGlobalSync;
      rc.gvt_interval = 16 + (seed % 3) * 24;
      rc.max_history = (seed % 2) ? 48 : 0;
      rc.until = until;
      rc.rebalance.period = 1 + (seed + ci) % 3;
      rc.rebalance.imbalance_trigger = 0.05;
      rc.rebalance.max_moves = 2 + ci;
      pdes::MachineEngine eng(
          *par.graph, partition::blocks(par.graph->size(), rc.num_workers),
          rc);
      eng.set_commit_hook(par.recorder->hook());
      const auto st = eng.run();
      ASSERT_FALSE(st.deadlocked)
          << "seed " << seed << " cfg " << to_string(rc.configuration);
      ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
          << "seed " << seed << " workers " << rc.num_workers << " cfg "
          << to_string(rc.configuration);
      total_migrations += st.metrics.counter(obs::Metric::kMigrations);
      if (st.metrics.gauge(obs::Gauge::kLbImbalance) > 0.0)
        gauge_seen = true;
      EXPECT_GE(st.metrics.counter(obs::Metric::kRebalanceRounds), 1u)
          << "seed " << seed;
    }
  }
  EXPECT_GT(total_migrations, 0u);
  EXPECT_TRUE(gauge_seen);
}

// Seed-sweep determinism gate for the rate-based adaptation controller:
// kDynamic with a deliberately trigger-happy policy (single-window
// decisions, tiny evidence thresholds, tight history cap so pinning fires
// too) must stay bit-identical to the sequential oracle on both in-process
// engines.  Across the sweep the policy must actually flip modes somewhere
// -- a gate that never demotes or promotes would be vacuously green.
TEST(StressMatrix, DynamicAdaptationMatchesOracleBitExact) {
  const std::uint64_t seeds = stress_seeds();
  testutil::Watchdog wd("StressMatrix.DynamicAdaptationMatchesOracleBitExact",
                        std::chrono::seconds(120 + 2 * seeds));
  const PhysTime until = 250;
  std::uint64_t total_flips = 0;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomCircuitParams p;
    p.seed = seed * 2654435761u + 101;
    p.num_gates = 16 + (p.seed * 13) % 32;
    p.num_dffs = 3 + (p.seed * 7) % 6;
    p.zero_delay_pct = static_cast<int>((p.seed * 29) % 100);

    Built ref = build(p);
    pdes::SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(until);

    for (const bool threaded : {false, true}) {
      Built par = build(p);
      RunConfig rc;
      rc.num_workers = 2 + (seed + (threaded ? 1 : 0)) % 5;
      rc.configuration = Configuration::kDynamic;
      rc.gvt_interval = 8 + (seed % 3) * 16;
      rc.max_history = 16;  // tight cap: memory stalls + pinning exercised
      rc.until = until;
      rc.adapt.min_window_events = 2;
      rc.adapt.min_decision_windows = 1;
      rc.adapt.rate_alpha = 1.0;
      rc.adapt.rollback_rate_high = 0.05;
      rc.adapt.rollback_rate_low = 0.05;
      rc.adapt.pin_stall_windows = 1 + seed % 2;
      rc.adapt.max_demote_fraction = (seed % 2) ? 1.0 : 0.05;
      const auto part = partition::round_robin(par.graph->size(),
                                               rc.num_workers);
      pdes::RunStats st;
      if (threaded) {
        pdes::ThreadedEngine eng(*par.graph, part, rc);
        eng.set_commit_hook(par.recorder->hook());
        st = eng.run();
      } else {
        pdes::MachineEngine eng(*par.graph, part, rc);
        eng.set_commit_hook(par.recorder->hook());
        st = eng.run();
      }
      ASSERT_FALSE(st.deadlocked)
          << "seed " << seed << (threaded ? " threaded" : " machine");
      ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
          << "seed " << seed << " workers " << rc.num_workers
          << (threaded ? " threaded" : " machine");
      total_flips += st.metrics.counter(obs::Metric::kAdaptDemotions) +
                     st.metrics.counter(obs::Metric::kAdaptPromotions) +
                     st.metrics.counter(obs::Metric::kAdaptPins);
    }
  }
  EXPECT_GT(total_flips, 0u);
}

}  // namespace
}  // namespace vsim
