// Protocol-level unit tests for LpRuntime: Time Warp rollback,
// anti-message annihilation, fossil collection, conservative eligibility,
// ordering modes, memory stalls and mode switching.
#include <gtest/gtest.h>

#include "pdes/adaptive.h"
#include "pdes/lp_runtime.h"

namespace vsim::pdes {
namespace {

// A scripted LP: on every event, appends the event uid to its log and
// (optionally) sends one event per entry in `plan` for that input kind.
struct ScriptState final : LpState {
  std::vector<EventUid> log;
};

class ScriptLp : public LogicalProcess {
 public:
  explicit ScriptLp(std::string name) : LogicalProcess(std::move(name)) {}

  struct PlannedSend {
    std::int16_t on_kind;
    LpId dst;
    PhysTime delta_pt;
    std::int16_t kind;
  };
  std::vector<PlannedSend> plan;
  std::vector<EventUid> log;

  void simulate(const Event& ev, SimContext& ctx) override {
    log.push_back(ev.uid);
    for (const auto& p : plan) {
      if (p.on_kind == ev.kind)
        ctx.send(p.dst, {ev.ts.pt + p.delta_pt, 0}, p.kind, {});
    }
  }
  std::unique_ptr<LpState> save_state() const override {
    auto s = std::make_unique<ScriptState>();
    s->log = log;
    return s;
  }
  void restore_state(const LpState& s) override {
    log = static_cast<const ScriptState&>(s).log;
  }
};

// Captures routed events instead of delivering them.
class CaptureRouter final : public Router {
 public:
  void route(Event&& ev) override { routed.push_back(std::move(ev)); }
  void commit(const Event& ev) override { committed.push_back(ev); }
  std::vector<Event> routed;
  std::vector<Event> committed;
};

Event make_event(VirtualTime ts, LpId dst, EventUid uid,
                 std::int16_t kind = 1) {
  Event e;
  e.ts = ts;
  e.src = 99;
  e.dst = dst;
  e.uid = uid;
  e.kind = kind;
  return e;
}

class LpRuntimeTest : public testing::Test {
 protected:
  LpRuntimeTest() : lp_("lp") {}

  LpRuntime make(SyncMode mode,
                 OrderingMode ord = OrderingMode::kArbitrary,
                 ConservativeStrategy strat = ConservativeStrategy::kGlobalSync,
                 std::size_t cap = 0) {
    return LpRuntime(&lp_, ord, strat, mode, cap);
  }

  ScriptLp lp_;
  CaptureRouter router_;
};

TEST_F(LpRuntimeTest, ProcessesInTimestampOrder) {
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({5, 0}, 0, 2), router_);
  rt.enqueue(make_event({1, 0}, 0, 1), router_);
  rt.enqueue(make_event({3, 0}, 0, 3), router_);
  ASSERT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
  rt.process_next(router_);
  rt.process_next(router_);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 3, 2}));
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
}

TEST_F(LpRuntimeTest, StragglerTriggersRollbackAndReexecution) {
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({1, 0}, 0, 1), router_);
  rt.enqueue(make_event({5, 0}, 0, 5), router_);
  rt.enqueue(make_event({9, 0}, 0, 9), router_);
  rt.process_next(router_);
  rt.process_next(router_);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 5, 9}));

  // Straggler at t=3: events 5 and 9 must be undone and re-executed.
  rt.enqueue(make_event({3, 0}, 0, 3), router_);
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  EXPECT_EQ(rt.stats().events_undone, 2u);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1}));  // state restored
  while (rt.peek(kTimeZero, 100) == Eligibility::kReady)
    rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 3, 5, 9}));
}

TEST_F(LpRuntimeTest, EqualTimestampDoesNotRollBackUnderArbitrary) {
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kArbitrary);
  rt.enqueue(make_event({5, 0}, 0, 1), router_);
  rt.process_next(router_);
  rt.enqueue(make_event({5, 0}, 0, 2), router_);
  EXPECT_EQ(rt.stats().rollbacks, 0u);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 2}));
}

TEST_F(LpRuntimeTest, EqualTimestampRollsBackUnderUserConsistent) {
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kUserConsistent);
  rt.enqueue(make_event({5, 0}, 0, 1), router_);
  rt.process_next(router_);
  rt.enqueue(make_event({5, 0}, 0, 2), router_);
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  EXPECT_EQ(rt.stats().events_undone, 1u);
}

TEST_F(LpRuntimeTest, RollbackSendsAntiMessagesForUndoneSends) {
  lp_.plan.push_back({1, 7, 10, 42});  // on kind 1, send to LP 7 at +10
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({5, 0}, 0, 5, /*kind=*/1), router_);
  rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 1u);
  EXPECT_FALSE(router_.routed[0].negative);
  const EventUid sent_uid = router_.routed[0].uid;

  rt.enqueue(make_event({2, 0}, 0, 2, /*kind=*/9), router_);
  // The undone send must be cancelled with a negative copy.
  ASSERT_EQ(router_.routed.size(), 2u);
  EXPECT_TRUE(router_.routed[1].negative);
  EXPECT_EQ(router_.routed[1].uid, sent_uid);
  EXPECT_EQ(rt.stats().anti_messages_sent, 1u);
}

TEST_F(LpRuntimeTest, NegativeAnnihilatesPendingPositive) {
  auto rt = make(SyncMode::kOptimistic);
  Event pos = make_event({5, 0}, 0, 77);
  Event neg = pos;
  neg.negative = true;
  rt.enqueue(pos, router_);
  rt.enqueue(neg, router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
  EXPECT_EQ(rt.stats().annihilations, 1u);
}

TEST_F(LpRuntimeTest, NegativeBeforePositiveAnnihilates) {
  auto rt = make(SyncMode::kOptimistic);
  Event pos = make_event({5, 0}, 0, 77);
  Event neg = pos;
  neg.negative = true;
  rt.enqueue(neg, router_);  // transient reordering
  rt.enqueue(pos, router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
  EXPECT_EQ(rt.stats().annihilations, 1u);
}

TEST_F(LpRuntimeTest, NegativeForProcessedEventRollsBack) {
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({5, 0}, 0, 5), router_);
  rt.enqueue(make_event({7, 0}, 0, 7), router_);
  rt.process_next(router_);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{5, 7}));

  Event neg = make_event({5, 0}, 0, 5);
  neg.negative = true;
  rt.enqueue(neg, router_);
  EXPECT_EQ(lp_.log, std::vector<EventUid>{});  // both undone
  // Event 7 is re-pended; the cancelled event 5 is gone.
  ASSERT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{7}));
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
}

TEST_F(LpRuntimeTest, FossilCollectionCommitsInOrderAndFreesHistory) {
  auto rt = make(SyncMode::kOptimistic);
  for (EventUid u : {1u, 2u, 3u, 4u})
    rt.enqueue(make_event({static_cast<PhysTime>(u), 0}, 0, u), router_);
  while (rt.peek(kTimeZero, 100) == Eligibility::kReady)
    rt.process_next(router_);
  EXPECT_EQ(rt.history_size(), 4u);

  rt.fossil_collect({3, 0}, router_);
  // Events strictly below (3,0) commit; the (3,0) entry must be kept.
  ASSERT_EQ(router_.committed.size(), 2u);
  EXPECT_EQ(router_.committed[0].uid, 1u);
  EXPECT_EQ(router_.committed[1].uid, 2u);
  EXPECT_EQ(rt.history_size(), 2u);

  rt.fossil_collect(kTimeInf, router_);
  EXPECT_EQ(router_.committed.size(), 4u);
  EXPECT_EQ(rt.history_size(), 0u);
  EXPECT_EQ(rt.stats().events_committed, 4u);
}

TEST_F(LpRuntimeTest, ConservativeBlocksAboveGlobalBound) {
  auto rt = make(SyncMode::kConservative);
  rt.enqueue(make_event({5, 0}, 0, 1), router_);
  EXPECT_EQ(rt.peek({3, 0}, 100), Eligibility::kBlocked);
  EXPECT_EQ(rt.peek({5, 0}, 100), Eligibility::kReady);  // ts == bound safe
  rt.process_next(router_);
  // Conservative commits immediately.
  EXPECT_EQ(router_.committed.size(), 1u);
  EXPECT_EQ(rt.stats().events_committed, 1u);
}

TEST_F(LpRuntimeTest, HorizonMakesEventsIdle) {
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({50, 0}, 0, 1), router_);
  EXPECT_EQ(rt.peek(kTimeInf, /*until=*/10), Eligibility::kIdle);
  EXPECT_EQ(rt.peek(kTimeInf, /*until=*/50), Eligibility::kReady);
}

TEST_F(LpRuntimeTest, HistoryCapStallsOptimistically) {
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kArbitrary,
                 ConservativeStrategy::kGlobalSync, /*cap=*/2);
  for (EventUid u : {1u, 2u, 3u})
    rt.enqueue(make_event({static_cast<PhysTime>(u), 0}, 0, u), router_);
  rt.process_next(router_);
  rt.process_next(router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kBlocked);
  rt.note_blocked();
  EXPECT_EQ(rt.window_memory_stalls(), 1u);
  rt.fossil_collect(kTimeInf, router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
}

TEST_F(LpRuntimeTest, NullMessagesAdvanceChannelClocks) {
  auto rt = make(SyncMode::kConservative, OrderingMode::kUserConsistent,
                 ConservativeStrategy::kNullMessage);
  rt.add_input_channel(42);
  rt.enqueue(make_event({5, 0}, 0, 1), router_);
  // Clock at zero: strictly-less test fails.
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kBlocked);
  Event null_msg;
  null_msg.ts = {6, 0};
  null_msg.src = 42;
  null_msg.dst = 0;
  null_msg.kind = kNullMsgKind;
  rt.enqueue(null_msg, router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
}

TEST_F(LpRuntimeTest, NullPromiseUsesLookaheadOnlyWhenEnabled) {
  LpRuntime no_la(&lp_, OrderingMode::kArbitrary,
                  ConservativeStrategy::kNullMessage, SyncMode::kConservative,
                  0, /*use_lookahead=*/false);
  struct LaLp final : ScriptLp {
    LaLp() : ScriptLp("la") {}
    PhysTime lookahead() const override { return 7; }
  };
  LaLp la_lp;
  LpRuntime la_rt(&la_lp, OrderingMode::kArbitrary,
                  ConservativeStrategy::kNullMessage, SyncMode::kConservative,
                  0, /*use_lookahead=*/true);
  CaptureRouter r;
  no_la.enqueue(make_event({5, 0}, 0, 1), r);
  la_rt.enqueue(make_event({5, 0}, 0, 1), r);
  EXPECT_EQ(no_la.null_promise(), (VirtualTime{5, 0}));
  EXPECT_EQ(la_rt.null_promise(), (VirtualTime{12, 0}));
}

// One engine-style adaptation round over a single LP (fresh budget each
// round, as the engines refill it at every GVT round).  The table-driven
// transition/rate tests live in test_adaptive.cpp; the tests here drive the
// controller through REAL event flow (rollbacks from actual stragglers).
AdaptDecision adapt_round(LpRuntime& rt, const AdaptPolicy& p) {
  AdaptController ctrl(p, /*num_workers=*/1);
  ctrl.begin_round(1);
  return ctrl.adapt(rt);
}

// Policy with single-window decisions (the protocol tests exercise the
// transition rules, not the EWMA smoothing).
AdaptPolicy fast_policy() {
  AdaptPolicy p;
  p.min_window_events = 2;
  p.rollback_rate_high = 0.1;
  p.min_decision_windows = 1;
  p.rate_alpha = 1.0;
  return p;
}

TEST_F(LpRuntimeTest, AdaptationDemotesRollbackProneLp) {
  auto rt = make(SyncMode::kOptimistic);
  const AdaptPolicy policy = fast_policy();
  // Generate rollbacks: process then deliver stragglers repeatedly.
  for (int i = 0; i < 4; ++i) {
    rt.enqueue(make_event({10 + i, 0}, 0, 100 + static_cast<EventUid>(i)),
               router_);
    rt.process_next(router_);
    rt.enqueue(make_event({5 + i, 0}, 0, 200 + static_cast<EventUid>(i)),
               router_);
    while (rt.peek(kTimeZero, 1000) == Eligibility::kReady)
      rt.process_next(router_);
  }
  EXPECT_GT(rt.window_rollbacks(), 0u);
  EXPECT_GT(rt.window_undone(), 0u);
  const AdaptDecision d = adapt_round(rt, policy);
  EXPECT_EQ(d.action, AdaptAction::kDemote);
  EXPECT_GT(d.waste_rate, policy.rollback_rate_high);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
  EXPECT_EQ(rt.stats().adapt_demotions, 1u);
}

TEST_F(LpRuntimeTest, AdaptationPromotesStarvingConservativeLp) {
  auto rt = make(SyncMode::kConservative);
  const AdaptPolicy policy = fast_policy();
  // A promotion needs a clean record over REAL activity: process a couple
  // of safe events (no rollbacks), then starve behind the global bound.
  rt.enqueue(make_event({1, 0}, 0, 1), router_);
  rt.enqueue(make_event({2, 0}, 0, 2), router_);
  ASSERT_EQ(rt.peek({2, 0}, 1000), Eligibility::kReady);
  rt.process_next(router_);
  rt.process_next(router_);
  rt.enqueue(make_event({50, 0}, 0, 3), router_);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rt.peek({2, 0}, 1000), Eligibility::kBlocked);
    rt.note_blocked();
  }
  const AdaptDecision d = adapt_round(rt, policy);
  EXPECT_EQ(d.action, AdaptAction::kPromote);
  EXPECT_EQ(rt.mode(), SyncMode::kOptimistic);
  EXPECT_EQ(rt.stats().adapt_promotions, 1u);
}

TEST_F(LpRuntimeTest, AdaptationStarvedRepromotionNeedsEscalatedEvidence) {
  // Regression: the promotion's clean-record test is vacuous for a fully
  // starved LP (no active windows since the flip), so a starved conservative
  // LP used to flip optimistic on blocked counts alone -- then roll back and
  // demote the moment traffic resumed, ping-ponging forever.  Requiring
  // activity instead would trap throttled LPs (pending work parked just
  // above the safe bound, the very LPs speculation helps), so the fix is
  // escalation: each demotion doubles the cumulative blocked-poll evidence
  // the next promotion needs.
  auto rt = make(SyncMode::kOptimistic);
  const AdaptPolicy policy = fast_policy();
  // Demote via rollbacks (straggler after every processed event).
  for (int i = 0; i < 4; ++i) {
    rt.enqueue(make_event({10 + i, 0}, 0, 100 + static_cast<EventUid>(i)),
               router_);
    rt.process_next(router_);
    rt.enqueue(make_event({5 + i, 0}, 0, 200 + static_cast<EventUid>(i)),
               router_);
    while (rt.peek(kTimeZero, 1000) == Eligibility::kReady)
      rt.process_next(router_);
  }
  ASSERT_EQ(adapt_round(rt, policy).action, AdaptAction::kDemote);
  ASSERT_EQ(rt.mode(), SyncMode::kConservative);
  ASSERT_EQ(rt.demotions(), 1u);

  // Fully starved (zero events processed since the flip): 3 blocked polls
  // met the pre-demotion threshold of 2, but after one demotion the LP
  // needs min_window_events << 1 = 4 cumulative -- it must stay
  // conservative this round.
  rt.enqueue(make_event({200, 0}, 0, 300), router_);
  for (int i = 0; i < 3; ++i) rt.note_blocked();
  EXPECT_EQ(adapt_round(rt, policy).action, AdaptAction::kNone);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);

  // Sustained starvation accumulates across rounds: once the cumulative
  // evidence clears the escalated threshold the LP still promotes --
  // escalation delays re-promotion, it does not forbid it.
  rt.note_blocked();
  EXPECT_EQ(adapt_round(rt, policy).action, AdaptAction::kPromote);
  EXPECT_EQ(rt.mode(), SyncMode::kOptimistic);
}

TEST_F(LpRuntimeTest, AdaptationDemotionBacksOffRepromotion) {
  // Ping-pong damping: a rollback-prone LP is demoted; each demotion
  // doubles the blocked-poll evidence the next promotion requires, so at a
  // constant blocked-poll rate per round each oscillation takes twice as
  // many rounds as the last (the frequency halves).
  auto rt = make(SyncMode::kOptimistic);
  const AdaptPolicy policy = fast_policy();
  // Demote via rollbacks (straggler after every processed event).
  for (int i = 0; i < 4; ++i) {
    rt.enqueue(make_event({10 + i, 0}, 0, 100 + static_cast<EventUid>(i)),
               router_);
    rt.process_next(router_);
    rt.enqueue(make_event({5 + i, 0}, 0, 200 + static_cast<EventUid>(i)),
               router_);
    while (rt.peek(kTimeZero, 1000) == Eligibility::kReady)
      rt.process_next(router_);
  }
  ASSERT_EQ(adapt_round(rt, policy).action, AdaptAction::kDemote);
  EXPECT_EQ(rt.demotions(), 1u);

  // One demotion: the threshold is min_window_events << 1 = 4 blocked
  // polls.  Clean activity plus 3 blocked polls (enough before the
  // demotion) must NOT re-promote...
  rt.enqueue(make_event({100, 0}, 0, 300), router_);
  rt.enqueue(make_event({101, 0}, 0, 301), router_);
  ASSERT_EQ(rt.peek({101, 0}, 1000), Eligibility::kReady);
  rt.process_next(router_);
  rt.process_next(router_);
  for (int i = 0; i < 3; ++i) rt.note_blocked();
  EXPECT_EQ(adapt_round(rt, policy).action, AdaptAction::kNone);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);

  // ...but one more round of clean starvation clears the escalated
  // cumulative threshold: delay, not prohibition.
  rt.enqueue(make_event({102, 0}, 0, 302), router_);
  rt.enqueue(make_event({103, 0}, 0, 303), router_);
  ASSERT_EQ(rt.peek({103, 0}, 1000), Eligibility::kReady);
  rt.process_next(router_);
  rt.process_next(router_);
  rt.note_blocked();
  EXPECT_EQ(adapt_round(rt, policy).action, AdaptAction::kPromote);
  EXPECT_EQ(rt.mode(), SyncMode::kOptimistic);
}

TEST_F(LpRuntimeTest, PinnedConservativeLpIsNotPromoted) {
  auto rt = make(SyncMode::kOptimistic);
  AdaptPolicy policy = fast_policy();
  policy.min_window_events = 1;
  rt.pin_conservative();
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
  EXPECT_EQ(rt.stats().adapt_pins, 1u);
  rt.enqueue(make_event({50, 0}, 0, 1), router_);
  for (int i = 0; i < 5; ++i) rt.note_blocked();
  // Short-circuited before any rate math: no action, and the window
  // counters are left untouched (no reset_window churn for pinned LPs).
  EXPECT_EQ(adapt_round(rt, policy).action, AdaptAction::kNone);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
  EXPECT_EQ(rt.window_blocked(), 5u);
}

TEST_F(LpRuntimeTest, StragglerAfterDemotionStillRollsBackHistory) {
  // Regression (found by fuzzing): an LP demoted optimistic->conservative
  // while still holding speculative history must roll back on stragglers
  // targeting that history; otherwise it processes events out of order.
  auto rt = make(SyncMode::kOptimistic);
  rt.enqueue(make_event({5, 0}, 0, 5), router_);
  rt.enqueue(make_event({9, 0}, 0, 9), router_);
  rt.process_next(router_);
  rt.process_next(router_);
  ASSERT_EQ(rt.history_size(), 2u);

  rt.set_mode(SyncMode::kConservative);  // dynamic demotion
  rt.enqueue(make_event({7, 0}, 0, 7), router_);  // straggler
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{5}));
  while (rt.peek(kTimeInf, 100) == Eligibility::kReady)
    rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{5, 7, 9}));
}

// ---- transport-adjacent corner cases ----
// The reliable channel dedups and orders packets, but the protocol layer
// still sees edge timings: duplicates of pending events, and stragglers
// landing exactly on the committed frontier after fossil collection.

TEST_F(LpRuntimeTest, DuplicatePendingPositiveIsAbsorbed) {
  auto rt = make(SyncMode::kOptimistic);
  const Event e = make_event({5, 0}, 0, 7);
  rt.enqueue(e, router_);
  rt.enqueue(e, router_);  // transport duplicate while still pending
  ASSERT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
  rt.process_next(router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{7}));
}

TEST_F(LpRuntimeTest, DuplicateOfProcessedEventNeedsTransportDedup) {
  // Arbitrary ordering: a duplicate of an already-processed event is
  // indistinguishable from a legitimate new equal-timestamp event, so the
  // runtime re-executes it.  This is exactly why the reliable channel's
  // receiver-side dedup is load-bearing for lossy links.
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kArbitrary);
  const Event e = make_event({5, 0}, 0, 7);
  rt.enqueue(e, router_);
  rt.process_next(router_);
  rt.enqueue(e, router_);
  EXPECT_EQ(rt.stats().rollbacks, 0u);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{7, 7}));
}

TEST_F(LpRuntimeTest, DuplicateOfProcessedEventSelfHealsUnderUserConsistent) {
  // User-consistent ordering rolls back on the equal-timestamp arrival and
  // the re-pended original then absorbs the duplicate in the pending set
  // (same ts, same uid), so the event executes exactly once.
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kUserConsistent);
  const Event e = make_event({5, 0}, 0, 7);
  rt.enqueue(e, router_);
  rt.process_next(router_);
  rt.enqueue(e, router_);
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  ASSERT_EQ(rt.peek(kTimeZero, 100), Eligibility::kReady);
  rt.process_next(router_);
  EXPECT_EQ(rt.peek(kTimeZero, 100), Eligibility::kIdle);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{7}));
}

TEST_F(LpRuntimeTest, StragglerAtCommitFrontierArbitrary) {
  // Fossil collection at gvt keeps ts == gvt entries; an arrival exactly at
  // the frontier commutes with them under the arbitrary ordering.
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kArbitrary);
  for (EventUid u : {1u, 2u, 3u})
    rt.enqueue(make_event({static_cast<PhysTime>(u), 0}, 0, u), router_);
  while (rt.peek(kTimeZero, 100) == Eligibility::kReady)
    rt.process_next(router_);
  rt.fossil_collect({3, 0}, router_);
  ASSERT_EQ(rt.history_size(), 1u);  // the (3,0) entry must survive

  rt.enqueue(make_event({3, 0}, 0, 99), router_);
  EXPECT_EQ(rt.stats().rollbacks, 0u);
  rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 2, 3, 99}));
}

TEST_F(LpRuntimeTest, StragglerAtCommitFrontierUserConsistent) {
  // Same arrival under user-consistent ordering: the kept (3,0) entry is
  // rolled back and re-executed after the straggler in uid order.  If
  // fossil collection had committed the equal-gvt entry this would be an
  // unrecoverable causality violation.
  auto rt = make(SyncMode::kOptimistic, OrderingMode::kUserConsistent);
  for (EventUid u : {1u, 2u, 3u})
    rt.enqueue(make_event({static_cast<PhysTime>(u), 0}, 0, u), router_);
  while (rt.peek(kTimeZero, 100) == Eligibility::kReady)
    rt.process_next(router_);
  rt.fossil_collect({3, 0}, router_);
  ASSERT_EQ(rt.history_size(), 1u);

  rt.enqueue(make_event({3, 0}, 0, 0), router_);  // uid 0 sorts first
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  EXPECT_EQ(rt.stats().events_undone, 1u);
  while (rt.peek(kTimeZero, 100) == Eligibility::kReady)
    rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{1, 2, 0, 3}));
}

// ---- lazy cancellation ----

class LazyTest : public LpRuntimeTest {
 protected:
  LpRuntime make_lazy() {
    return LpRuntime(&lp_, OrderingMode::kArbitrary,
                     ConservativeStrategy::kGlobalSync,
                     SyncMode::kOptimistic, 0, false,
                     CancellationPolicy::kLazy);
  }
};

TEST_F(LazyTest, IdenticalRegenerationSuppressesAntiAndResend) {
  lp_.plan.push_back({1, 7, 10, 42});  // on kind 1, send to LP 7 at +10
  auto rt = make_lazy();
  rt.enqueue(make_event({5, 0}, 0, 5, /*kind=*/1), router_);
  rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 1u);
  const EventUid original_uid = router_.routed[0].uid;

  // Straggler with a *different kind* (9): the scripted LP's output for
  // event 5 is unchanged, so after re-execution nothing new is routed:
  // no anti-message, no duplicate positive.
  rt.enqueue(make_event({2, 0}, 0, 2, /*kind=*/9), router_);
  EXPECT_EQ(router_.routed.size(), 1u);  // rollback sent nothing yet
  while (rt.peek(kTimeInf, 100) == Eligibility::kReady)
    rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 1u);  // identical send matched
  EXPECT_EQ(rt.stats().lazy_reuses, 1u);
  EXPECT_EQ(rt.stats().anti_messages_sent, 0u);
  EXPECT_EQ(router_.routed[0].uid, original_uid);
}

TEST_F(LazyTest, ChangedOutputCancelsOldAndSendsNew) {
  // The LP sends one event per kind-1 input; a straggler of kind 1 at an
  // earlier time changes WHAT is sent during re-execution (different ts).
  lp_.plan.push_back({1, 7, 10, 42});
  auto rt = make_lazy();
  rt.enqueue(make_event({5, 0}, 0, 5, /*kind=*/1), router_);
  rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 1u);
  const EventUid old_uid = router_.routed[0].uid;

  // Straggler of kind 1 at t=2: re-execution processes (2) then (5).
  // Event 2 generates a NEW send at ts 12 (no lazy match: old one is at
  // 15); re-executing event 5 regenerates the identical send at 15.
  rt.enqueue(make_event({2, 0}, 0, 2, /*kind=*/1), router_);
  while (rt.peek(kTimeInf, 100) == Eligibility::kReady)
    rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 2u);
  EXPECT_FALSE(router_.routed[1].negative);
  EXPECT_EQ(router_.routed[1].ts, (VirtualTime{12, 0}));
  EXPECT_EQ(rt.stats().lazy_reuses, 1u);   // the (15,0) send matched
  EXPECT_EQ(rt.stats().anti_messages_sent, 0u);
  EXPECT_EQ(rt.stats().lazy_cancels, 0u);
  (void)old_uid;
}

TEST_F(LazyTest, AnnihilatedEventSettlesItsLazySends) {
  lp_.plan.push_back({1, 7, 10, 42});
  auto rt = make_lazy();
  const Event gen = make_event({5, 0}, 0, 5, /*kind=*/1);
  rt.enqueue(gen, router_);
  rt.process_next(router_);
  ASSERT_EQ(router_.routed.size(), 1u);
  const EventUid sent_uid = router_.routed[0].uid;

  // The generating event itself is cancelled: roll back, re-pend, erase.
  Event neg = gen;
  neg.negative = true;
  rt.enqueue(neg, router_);
  // Its lazy send can never be regenerated -> anti-message now.
  ASSERT_EQ(router_.routed.size(), 2u);
  EXPECT_TRUE(router_.routed[1].negative);
  EXPECT_EQ(router_.routed[1].uid, sent_uid);
  EXPECT_EQ(rt.stats().lazy_cancels, 1u);
  EXPECT_EQ(rt.peek(kTimeInf, 100), Eligibility::kIdle);
}

TEST_F(LazyTest, ReexecutionPastGeneratorCancelsUnregenerated) {
  // Event 5 (kind 1) sends; the straggler at t=2 is ALSO kind 1 but the
  // LP's plan changes behaviour via state: here we emulate divergence by
  // cancelling event 5 entirely and keeping a later event, so the
  // re-execution of 9 (kind 2, no sends) settles nothing and the
  // annihilation path fires instead -- covered above.  This test covers
  // rule (b): re-executing the generator with *different* output.
  lp_.plan.push_back({1, 7, 10, 42});
  auto rt = make_lazy();
  rt.enqueue(make_event({5, 0}, 0, 5, /*kind=*/1), router_);
  rt.process_next(router_);
  // Mutate the plan so re-execution produces a different destination time.
  lp_.plan[0].delta_pt = 20;
  rt.enqueue(make_event({2, 0}, 0, 2, /*kind=*/9), router_);
  while (rt.peek(kTimeInf, 100) == Eligibility::kReady)
    rt.process_next(router_);
  // Old send (15) cancelled, new send (25) routed.
  ASSERT_EQ(router_.routed.size(), 3u);
  EXPECT_FALSE(router_.routed[1].negative);
  EXPECT_EQ(router_.routed[1].ts, (VirtualTime{25, 0}));
  EXPECT_TRUE(router_.routed[2].negative);
  EXPECT_EQ(router_.routed[2].uid, router_.routed[0].uid);
  EXPECT_EQ(rt.stats().lazy_cancels, 1u);
}

TEST_F(LazyTest, EqualTimestampAntiAnnihilatesMinimalPendingCopy) {
  // Lazy-deletion index corner: a uid present in the pending queue at TWO
  // timestamps (reserved initial-event uids can collide with send uids)
  // when an anti-message with the same uid -- stamped with the timestamp of
  // the EARLIER copy -- arrives.  The annihilation must (a) kill exactly
  // the minimal-ts copy, matching the old std::set's in-order scan, (b) not
  // roll anything back, and (c) settle the uid's undecided lazy sends as
  // anti-messages, all under lazy cancellation.
  lp_.plan.push_back({1, 7, 10, 42});
  auto rt = make_lazy();
  rt.enqueue(make_event({5, 0}, 0, 7, /*kind=*/1), router_);
  rt.process_next(router_);  // sends (15, 0) to LP 7
  ASSERT_EQ(router_.routed.size(), 1u);
  const EventUid sent_uid = router_.routed[0].uid;

  // Straggler of another kind: event 7 is re-pended at (5, 0) and its send
  // parks in the lazy queue, fate undecided.
  rt.enqueue(make_event({2, 0}, 0, 2, /*kind=*/9), router_);
  ASSERT_EQ(rt.stats().rollbacks, 1u);
  // A second positive with the SAME uid at a later timestamp.
  rt.enqueue(make_event({9, 0}, 0, 7, /*kind=*/1), router_);
  ASSERT_EQ(rt.pending_count(), 3u);

  Event neg = make_event({5, 0}, 0, 7, /*kind=*/1);
  neg.negative = true;
  rt.enqueue(neg, router_);
  EXPECT_EQ(rt.stats().annihilations, 1u);
  EXPECT_EQ(rt.stats().rollbacks, 1u);  // no new rollback
  ASSERT_EQ(rt.pending_count(), 2u);
  EXPECT_EQ(rt.next_ts(), (VirtualTime{2, 0}));
  // The generator can never re-execute: its lazy send is cancelled now.
  ASSERT_EQ(router_.routed.size(), 2u);
  EXPECT_TRUE(router_.routed[1].negative);
  EXPECT_EQ(router_.routed[1].uid, sent_uid);
  EXPECT_EQ(rt.stats().lazy_cancels, 1u);

  // The (9, 0) copy survived and executes after the straggler.
  while (rt.peek(kTimeInf, 100) == Eligibility::kReady)
    rt.process_next(router_);
  EXPECT_EQ(lp_.log, (std::vector<EventUid>{2, 7}));
  ASSERT_EQ(router_.routed.size(), 3u);
  EXPECT_FALSE(router_.routed[2].negative);
  EXPECT_EQ(router_.routed[2].ts, (VirtualTime{19, 0}));
  EXPECT_GT(rt.stats().queue_ops, 0u);
}

TEST_F(LpRuntimeTest, UnsaveableLpIsForcedConservative) {
  struct HeavyLp final : ScriptLp {
    HeavyLp() : ScriptLp("heavy") {}
    bool can_save_state() const override { return false; }
  };
  HeavyLp heavy;
  LpRuntime rt(&heavy, OrderingMode::kArbitrary,
               ConservativeStrategy::kGlobalSync, SyncMode::kOptimistic, 0);
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
  rt.set_mode(SyncMode::kOptimistic);  // must be refused
  EXPECT_EQ(rt.mode(), SyncMode::kConservative);
}

}  // namespace
}  // namespace vsim::pdes
