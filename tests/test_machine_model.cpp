// Machine-model engine tests: makespan sanity, statistics consistency,
// deadlock detection, memory caps and configuration behaviour.
#include <gtest/gtest.h>

#include "circuits/fsm.h"
#include "circuits/iir.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"

namespace vsim::pdes {
namespace {

struct Built {
  std::unique_ptr<LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
};

Built build_fsm(std::size_t lanes = 3) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = lanes;
  p.width = 5;
  circuits::build_fsm(*b.design, p);
  b.design->finalize();
  return b;
}

RunStats run(Built& b, RunConfig rc) {
  MachineEngine eng(*b.graph,
                    partition::round_robin(b.graph->size(), rc.num_workers),
                    rc);
  return eng.run();
}

TEST(MachineModel, SingleWorkerMakespanExceedsSequentialCost) {
  // With one worker every event is serialized and protocol overheads are
  // pure cost: makespan >= sequential work.
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  const double seq_cost = seq.run(300).total_cost;

  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 1;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 300;
  const RunStats st = run(b, rc);
  EXPECT_GE(st.makespan, seq_cost);
}

TEST(MachineModel, SpeedupNeverExceedsWorkerCount) {
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  const double seq_cost = seq.run(300).total_cost;
  for (std::size_t p : {2u, 4u, 8u}) {
    Built b = build_fsm();
    RunConfig rc;
    rc.num_workers = p;
    rc.configuration = Configuration::kDynamic;
    rc.until = 300;
    const RunStats st = run(b, rc);
    EXPECT_LE(seq_cost / st.makespan, static_cast<double>(p));
  }
}

TEST(MachineModel, CommittedEventsMatchSequentialAcrossConfigs) {
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  const auto seq_events = seq.run(300).stats.total_events();

  for (Configuration c :
       {Configuration::kAllOptimistic, Configuration::kAllConservative,
        Configuration::kMixed, Configuration::kDynamic}) {
    Built b = build_fsm();
    RunConfig rc;
    rc.num_workers = 5;
    rc.configuration = c;
    rc.until = 300;
    const RunStats st = run(b, rc);
    EXPECT_EQ(st.total_committed(), seq_events) << to_string(c);
    // Processed >= committed (speculative re-execution never loses work).
    EXPECT_GE(st.total_events(), st.total_committed());
  }
}

TEST(MachineModel, ConservativeNeverRollsBack) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 6;
  rc.configuration = Configuration::kAllConservative;
  rc.until = 300;
  const RunStats st = run(b, rc);
  EXPECT_EQ(st.total_rollbacks(), 0u);
  for (const auto& lp : st.per_lp) {
    EXPECT_EQ(lp.rollbacks, 0u);
    EXPECT_EQ(lp.state_saves, 0u);
    EXPECT_EQ(lp.max_history, 0u);
  }
}

TEST(MachineModel, HistoryCapIsHonoured) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 6;
  rc.configuration = Configuration::kAllOptimistic;
  rc.max_history = 8;
  rc.until = 300;
  const RunStats st = run(b, rc);
  for (const auto& lp : st.per_lp) EXPECT_LE(lp.max_history, 8u);
}

TEST(MachineModel, UserConsistentConservativeWithoutLookaheadDeadlocks) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllConservative;
  rc.ordering = OrderingMode::kUserConsistent;
  rc.strategy = ConservativeStrategy::kNullMessage;
  rc.use_lookahead = false;
  rc.until = 300;
  const RunStats st = run(b, rc);
  EXPECT_TRUE(st.deadlocked);
}

TEST(MachineModel, NullMessageStrategyWithLookaheadProgressesOnGateCircuit) {
  // Gate-level IIR has positive lookahead everywhere -> CMB works.
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::IirParams p;
  p.sections = 2;
  p.width = 4;
  circuits::build_iir(*b.design, p);
  b.design->finalize();

  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllConservative;
  rc.ordering = OrderingMode::kUserConsistent;
  rc.strategy = ConservativeStrategy::kNullMessage;
  rc.use_lookahead = true;
  rc.until = 1000;
  MachineEngine eng(*b.graph,
                    partition::round_robin(b.graph->size(), rc.num_workers),
                    rc);
  const RunStats st = eng.run();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_GT(st.total_committed(), 0u);
  EXPECT_GT(st.total_null_messages(), 0u);
}

TEST(MachineModel, LookaheadFreeProtocolSendsNoNullMessages) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = 300;
  const RunStats st = run(b, rc);
  EXPECT_EQ(st.total_null_messages(), 0u);
}

TEST(MachineModel, DeterministicAcrossRuns) {
  RunConfig rc;
  rc.num_workers = 7;
  rc.configuration = Configuration::kDynamic;
  rc.until = 300;
  Built b1 = build_fsm();
  Built b2 = build_fsm();
  const RunStats s1 = run(b1, rc);
  const RunStats s2 = run(b2, rc);
  EXPECT_EQ(s1.makespan, s2.makespan);
  EXPECT_EQ(s1.total_events(), s2.total_events());
  EXPECT_EQ(s1.total_rollbacks(), s2.total_rollbacks());
  EXPECT_EQ(s1.gvt_rounds, s2.gvt_rounds);
}

TEST(MachineModel, MixedConfigurationAssignsModesByHint) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kMixed;
  rc.until = 300;
  const RunStats st = run(b, rc);
  // Synchronous LPs (clock, DFFs, their nets) never save state.
  for (LpId id = 0; id < b.graph->size(); ++id) {
    if (b.graph->lp(id).sync_hint()) {
      EXPECT_EQ(st.per_lp[id].state_saves, 0u) << b.graph->lp(id).name();
    }
  }
}

TEST(MachineModel, WorkerStatsAccountAllEvents) {
  Built b = build_fsm();
  RunConfig rc;
  rc.num_workers = 5;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 300;
  const RunStats st = run(b, rc);
  std::uint64_t by_worker = 0;
  for (const auto& w : st.per_worker) by_worker += w.events;
  EXPECT_EQ(by_worker, st.total_events());
}

}  // namespace
}  // namespace vsim::pdes
