// Hostile-input hardening for the wire layer (net/frame.h, net/node.h).
//
// The framing contract: a FrameParser fed arbitrary bytes either yields a
// valid frame, asks for more input, or declares the stream corrupt -- it
// never crashes, never allocates unboundedly, and an absurd declared length
// is rejected from the 8-byte header alone, before any body is buffered.
// At the node layer, a connection that turns hostile is quarantined (closed
// and counted) without disturbing the rest of the mesh, and kData frames
// from a stale recovery epoch are dropped before they can reach the
// reliable layer's reset cursors.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/node.h"
#include "net/socket.h"
#include "pdes/config.h"

namespace vsim::net {
namespace {

std::vector<std::uint8_t> make_frame(FrameType type, std::uint32_t epoch,
                                     const std::vector<std::uint8_t>& pl) {
  std::vector<std::uint8_t> out;
  append_frame(out, type, epoch, pl.data(), pl.size());
  return out;
}

TEST(FrameParser, IncrementalFeedRoundTrips) {
  const std::vector<std::uint8_t> pl = {9, 8, 7, 6, 5};
  const auto wire = make_frame(FrameType::kGvtSet, 42, pl);
  FrameParser p(4096);
  FrameView v;
  std::string err;
  // One byte at a time: "need more" until the last byte lands.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(&wire[i], 1);
    EXPECT_EQ(p.next(&v, &err), 0) << "at byte " << i;
  }
  p.feed(&wire.back(), 1);
  ASSERT_EQ(p.next(&v, &err), 1) << err;
  EXPECT_EQ(v.type, FrameType::kGvtSet);
  EXPECT_EQ(v.epoch, 42u);
  ASSERT_EQ(v.size, pl.size());
  EXPECT_EQ(std::memcmp(v.data, pl.data(), pl.size()), 0);
  EXPECT_EQ(p.next(&v, &err), 0);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(FrameParser, TruncatedFrameStaysPendingWithBoundedBuffer) {
  const auto wire =
      make_frame(FrameType::kData, 1, std::vector<std::uint8_t>(100, 0xab));
  FrameParser p(4096);
  p.feed(wire.data(), wire.size() / 2);
  FrameView v;
  std::string err;
  EXPECT_EQ(p.next(&v, &err), 0);
  EXPECT_EQ(p.buffered_bytes(), wire.size() / 2);
}

TEST(FrameParser, BadChecksumIsFatal) {
  auto wire =
      make_frame(FrameType::kData, 1, std::vector<std::uint8_t>(16, 0x55));
  wire[wire.size() - 1] ^= 0x01;  // flip one payload bit
  FrameParser p(4096);
  p.feed(wire.data(), wire.size());
  FrameView v;
  std::string err;
  EXPECT_EQ(p.next(&v, &err), -1);
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(FrameParser, AbsurdLengthRejectedFromHeaderAlone) {
  // Header claims a ~2 GiB body.  The parser must refuse from the header,
  // without waiting for (or buffering toward) a body that size.
  FrameParser p(4096);
  const std::uint8_t hdr[8] = {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0};
  p.feed(hdr, sizeof hdr);
  FrameView v;
  std::string err;
  EXPECT_EQ(p.next(&v, &err), -1);
  EXPECT_NE(err.find("length"), std::string::npos) << err;
  EXPECT_LE(p.buffered_bytes(), sizeof hdr);
}

TEST(FrameParser, UndersizedLengthRejected) {
  // body=2 cannot even hold the type + epoch fields.
  FrameParser p(4096);
  const std::uint8_t hdr[8] = {2, 0, 0, 0, 0, 0, 0, 0};
  p.feed(hdr, sizeof hdr);
  FrameView v;
  std::string err;
  EXPECT_EQ(p.next(&v, &err), -1);
}

TEST(FrameParser, UnknownTypeRejectedEvenWithValidCrc) {
  // A frame whose checksum is correct but whose type byte is gibberish:
  // craft it by hand so the crc covers the bogus type.
  std::vector<std::uint8_t> wire = make_frame(FrameType::kData, 7, {1, 2, 3});
  wire[8] = 200;  // type byte
  const std::uint32_t crc = crc32(wire.data() + 8, wire.size() - 8);
  wire[4] = static_cast<std::uint8_t>(crc);
  wire[5] = static_cast<std::uint8_t>(crc >> 8);
  wire[6] = static_cast<std::uint8_t>(crc >> 16);
  wire[7] = static_cast<std::uint8_t>(crc >> 24);
  FrameParser p(4096);
  p.feed(wire.data(), wire.size());
  FrameView v;
  std::string err;
  EXPECT_EQ(p.next(&v, &err), -1);
  EXPECT_NE(err.find("unknown frame type"), std::string::npos) << err;
}

TEST(FrameParser, SteadyStateMemoryStaysBounded) {
  const auto wire =
      make_frame(FrameType::kData, 1, std::vector<std::uint8_t>(64, 0x11));
  FrameParser p(4096);
  FrameView v;
  std::string err;
  std::size_t delivered = 0;
  for (int i = 0; i < 20000; ++i) {
    p.feed(wire.data(), wire.size());
    while (p.next(&v, &err) == 1) ++delivered;
    // Drained after every feed: the unconsumed tail never exceeds one frame.
    ASSERT_LE(p.buffered_bytes(), wire.size());
  }
  EXPECT_EQ(delivered, 20000u);
}

// ---- SocketNode quarantine and epoch hygiene ------------------------------

pdes::NetConfig node_config(const std::string& dir) {
  pdes::NetConfig cfg;
  cfg.socket_dir = dir;
  cfg.heartbeat_interval_ms = 5;
  cfg.heartbeat_timeout_ms = 2000;
  return cfg;
}

std::string fresh_socket_dir() {
  char tmpl[] = "/tmp/vsim-netframe-XXXXXX";
  const char* d = ::mkdtemp(tmpl);
  return d != nullptr ? d : "/tmp";
}

TEST(SocketNodeHostile, StaleEpochDataDroppedControlDelivered) {
  const std::string dir = fresh_socket_dir();
  pdes::NetConfig cfg = node_config(dir);
  SocketNode a(0, 2, cfg);
  SocketNode b(1, 2, cfg);
  std::string err;
  ASSERT_TRUE(a.start(&err)) << err;
  ASSERT_TRUE(b.start(&err)) << err;
  const std::int64_t up_deadline = now_ms() + 5000;
  while (!(a.all_links_up() && b.all_links_up()) && now_ms() < up_deadline) {
    a.pump(1);
    b.pump(1);
  }
  ASSERT_TRUE(a.all_links_up() && b.all_links_up());

  // b lives in a newer recovery epoch than a's traffic is stamped with.
  b.set_epoch(3);
  int data_got = 0;
  int ctrl_got = 0;
  b.set_handler([&](std::uint32_t, const FrameView& v) {
    if (v.type == FrameType::kData) ++data_got;
    if (v.type == FrameType::kGvtSet) ++ctrl_got;
  });
  const std::vector<std::uint8_t> pl = {1, 2, 3};
  ASSERT_TRUE(a.send(1, FrameType::kData, pl));    // epoch 0: stale
  ASSERT_TRUE(a.send(1, FrameType::kGvtSet, pl));  // control: always lands
  const std::int64_t deadline = now_ms() + 5000;
  while ((b.counters().stale_epoch_dropped < 1 || ctrl_got < 1) &&
         now_ms() < deadline) {
    a.pump(1);
    b.pump(1);
  }
  EXPECT_EQ(b.counters().stale_epoch_dropped, 1u);
  EXPECT_EQ(ctrl_got, 1);
  EXPECT_EQ(data_got, 0);  // the stale data frame never reached the handler

  // Matching epochs flow again.
  a.set_epoch(3);
  ASSERT_TRUE(a.send(1, FrameType::kData, pl));
  const std::int64_t deadline2 = now_ms() + 5000;
  while (data_got < 1 && now_ms() < deadline2) {
    a.pump(1);
    b.pump(1);
  }
  EXPECT_EQ(data_got, 1);
  std::filesystem::remove_all(dir);
}

TEST(SocketNodeHostile, GarbageConnectionQuarantinedMeshSurvives) {
  const std::string dir = fresh_socket_dir();
  pdes::NetConfig cfg = node_config(dir);
  SocketNode a(0, 2, cfg);
  SocketNode b(1, 2, cfg);
  std::string err;
  ASSERT_TRUE(a.start(&err)) << err;
  ASSERT_TRUE(b.start(&err)) << err;
  const std::int64_t up_deadline = now_ms() + 5000;
  while (!(a.all_links_up() && b.all_links_up()) && now_ms() < up_deadline) {
    a.pump(1);
    b.pump(1);
  }
  ASSERT_TRUE(a.all_links_up() && b.all_links_up());

  // An attacker (or a corrupted peer) dials a's listener and spews bytes
  // whose length prefix decodes to ~1 GiB of 'A'.
  const int fd = dial(a.rank_addr(0), &err);
  ASSERT_GE(fd, 0) << err;
  std::vector<std::uint8_t> junk(4096, 0x41);
  const std::int64_t junk_deadline = now_ms() + 5000;
  while (a.counters().crc_errors < 1 && now_ms() < junk_deadline) {
    (void)write_some(fd, junk.data(), junk.size());
    a.pump(1);
    b.pump(1);
  }
  close_fd(fd);
  EXPECT_GE(a.counters().crc_errors, 1u);  // quarantined, not crashed

  // The legitimate mesh is untouched: a real frame still flows b -> a.
  int got = 0;
  a.set_handler([&](std::uint32_t src, const FrameView& v) {
    if (src == 1 && v.type == FrameType::kData) ++got;
  });
  ASSERT_TRUE(b.send(0, FrameType::kData, {5, 6, 7}));
  const std::int64_t deadline = now_ms() + 5000;
  while (got < 1 && now_ms() < deadline) {
    a.pump(1);
    b.pump(1);
  }
  EXPECT_EQ(got, 1);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vsim::net
