// VCD writer tests: structure, value mapping, delta-cycle collapsing.
#include <gtest/gtest.h>

#include <sstream>
#include <fstream>

#include "circuits/builder.h"
#include "pdes/sequential.h"
#include "vhdl/vcd.h"

namespace vsim::vhdl {
namespace {

using circuits::CircuitBuilder;
using circuits::GateKind;

struct SimRun {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<Design> design;
  std::unique_ptr<TraceRecorder> recorder;
};

SimRun simulate_inverter_chain() {
  SimRun r;
  r.graph = std::make_unique<pdes::LpGraph>();
  r.design = std::make_unique<Design>(*r.graph);
  CircuitBuilder cb(*r.design, 0);
  const auto a = cb.wire("a", Logic::k0);
  cb.stimulus(a, {{0, Logic::k0}, {10, Logic::k1}, {20, Logic::k0}});
  const auto x = cb.wire("x", Logic::k0);
  const auto y = cb.wire("y", Logic::k0);
  cb.gate(GateKind::kNot, {a}, x);
  cb.gate(GateKind::kNot, {x}, y);
  r.recorder = std::make_unique<TraceRecorder>(*r.design,
                                               std::vector<SignalId>{a, x, y});
  r.design->finalize();
  pdes::SequentialEngine eng(*r.graph);
  eng.set_commit_hook(r.recorder->hook());
  eng.run(100);
  return r;
}

TEST(Vcd, HeaderAndDefinitions) {
  SimRun r = simulate_inverter_chain();
  std::ostringstream os;
  write_vcd(*r.recorder, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module vsim $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" x $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, TimelineCollapsesDeltaCascades) {
  SimRun r = simulate_inverter_chain();
  std::ostringstream os;
  write_vcd(*r.recorder, os);
  const std::string vcd = os.str();
  // One #0, one #10, one #20 section -- all deltas collapsed.
  EXPECT_NE(vcd.find("#0\n"), std::string::npos);
  EXPECT_NE(vcd.find("#10\n"), std::string::npos);
  EXPECT_NE(vcd.find("#20\n"), std::string::npos);
  EXPECT_EQ(vcd.find("#0\n", vcd.find("#0\n") + 1), std::string::npos);
  // At #10: a='1', x='0', y='1' -- the delta-settled values.
  const auto at10 = vcd.find("#10\n");
  const auto at20 = vcd.find("#20\n");
  const std::string sect = vcd.substr(at10, at20 - at10);
  EXPECT_NE(sect.find("1!"), std::string::npos);  // a
  EXPECT_NE(sect.find("0\""), std::string::npos); // x
  EXPECT_NE(sect.find("1#"), std::string::npos);  // y
}

TEST(Vcd, FourStateMapping) {
  pdes::LpGraph graph;
  Design design(graph);
  // A resolved bus with conflicting drivers produces 'x'; an undriven
  // net stays 'x'; weak values map onto 0/1.
  CircuitBuilder cb(design, 0);
  const auto a = cb.wire("a", Logic::k0);
  const auto b = cb.wire("b", Logic::k0);
  cb.stimulus(a, {{0, Logic::k0}, {5, Logic::k1}});
  cb.stimulus(b, {{0, Logic::k0}});
  const auto bus = cb.wire("bus", Logic::kU);
  cb.gate(GateKind::kBuf, {a}, bus);
  cb.gate(GateKind::kBuf, {b}, bus);
  TraceRecorder rec(design, {bus});
  design.finalize();
  pdes::SequentialEngine eng(graph);
  eng.set_commit_hook(rec.hook());
  eng.run(50);

  std::ostringstream os;
  write_vcd(rec, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("0!"), std::string::npos);  // both drive 0
  EXPECT_NE(vcd.find("x!"), std::string::npos);  // conflict at t=5
}

TEST(Vcd, VectorSignalsUseBinaryFormat) {
  pdes::LpGraph graph;
  Design design(graph);
  const SignalId v = design.add_signal("v", LogicVector::from_string("0000"));
  // Drive the vector from a stimulus-like process via the kernel API.
  CircuitBuilder cb(design, 0);
  const auto trig = cb.wire("trig", Logic::k0);
  cb.stimulus(trig, {{0, Logic::k0}, {5, Logic::k1}});
  // A tiny custom body assigning a vector value.
  class VecBody final : public ProcessBody {
   public:
    std::unique_ptr<ProcessBody> clone() const override {
      return std::make_unique<VecBody>(*this);
    }
    void run(ProcessApi& api) override {
      if (to_x01(api.value(0).scalar()) == Logic::k1)
        api.assign(0, LogicVector::from_string("1010"));
      api.wait_on({0});
    }
  };
  const ProcessId p = design.add_process("vec", std::make_unique<VecBody>());
  design.connect_in(p, trig);
  design.connect_out(p, v);
  TraceRecorder rec(design, {v});
  design.finalize();
  pdes::SequentialEngine eng(graph);
  eng.set_commit_hook(rec.hook());
  eng.run(50);

  std::ostringstream os;
  write_vcd(rec, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$var wire 4 ! v $end"), std::string::npos);
  EXPECT_NE(vcd.find("b1010 !"), std::string::npos);
}

TEST(Vcd, FileWriter) {
  SimRun r = simulate_inverter_chain();
  const std::string path = "/tmp/vsim_test.vcd";
  EXPECT_TRUE(write_vcd_file(*r.recorder, path));
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  EXPECT_FALSE(write_vcd_file(*r.recorder, "/nonexistent-dir/x.vcd"));
}

}  // namespace
}  // namespace vsim::vhdl
