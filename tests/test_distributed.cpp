// Multi-process distributed engine over real Unix-domain sockets.  The
// acceptance bar mirrors the chaos and checkpoint suites, but every event
// now crosses a genuine kernel socket between OS processes:
//   - a 4-rank run commits exactly the sequential oracle's traces;
//   - seeded FaultyTransport chaos on the real wire stays invisible;
//   - a SIGKILLed rank is detected (missed heartbeats / reaped child) and
//     recovered from the last checkpoint, still bit-identical;
//   - an injected transient disconnect heals through backoff reconnect
//     without dropping or duplicating a single committed event.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "circuits/builder.h"
#include "circuits/fsm.h"
#include "circuits/random_circuit.h"
#include "frontend/elaborator.h"
#include "obs/metrics.h"
#include "partition/partition.h"
#include "pdes/distributed.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VSIM_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define VSIM_TSAN 1
#endif

namespace vsim {
namespace {

using circuits::CircuitBuilder;
using circuits::FsmParams;
using circuits::GateKind;
using pdes::Configuration;
using pdes::DistributedEngine;
using pdes::FaultPlan;
using pdes::NetConfig;
using pdes::RunConfig;
using pdes::RunStats;
using pdes::SequentialEngine;
using pdes::WorkerCrash;
using vhdl::SignalId;
using vhdl::TraceRecorder;

// run() forks; ThreadSanitizer does not support doing real work in the
// children of a multi-threaded fork (the gtest process has the watchdog
// and sanitizer background threads).
#ifdef VSIM_TSAN
#define SKIP_UNDER_TSAN() GTEST_SKIP() << "fork-based engine under TSan"
#else
#define SKIP_UNDER_TSAN() (void)0
#endif

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

// Clocked feedback through a DFF plus a combinational cloud; identical to
// the chaos suite's gate netlist so failures are comparable across suites.
Built build_gates() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  CircuitBuilder cb(*b.design, /*gate_delay=*/2);
  const SignalId clk = cb.wire("clk");
  const SignalId a = cb.wire("a");
  const SignalId bi = cb.wire("b");
  cb.clock(clk, 25);
  cb.random_bits(a, 17, 7, 900, "rnd_a");
  cb.random_bits(bi, 11, 99, 900, "rnd_b");
  const SignalId x1 = cb.wire("x1");
  cb.gate(GateKind::kXor, {a, bi}, x1);
  const SignalId q = cb.wire("q");
  const SignalId d = cb.wire("d");
  cb.gate(GateKind::kXor, {x1, q}, d);
  const SignalId n1 = cb.wire("n1");
  cb.gate(GateKind::kNand, {a, q}, n1);
  const SignalId o1 = cb.wire("o1");
  cb.gate(GateKind::kOr, {n1, bi}, o1);
  b.recorder = std::make_unique<TraceRecorder>(
      *b.design, std::vector<SignalId>{x1, q, o1});
  cb.dff(clk, d, q);
  b.design->finalize();
  return b;
}

Built build_fsm() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  FsmParams p;
  p.lanes = 2;
  p.width = 3;
  p.input_stop = 400;
  const auto c = circuits::build_fsm(*b.design, p);
  std::vector<SignalId> probes = c.state;
  probes.push_back(c.parity);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

// Base config for a fast 4-rank UDS run: short heartbeats so death
// detection fits in test time, short GVT interval for frequent rounds.
RunConfig dist_config(PhysTime until) {
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.gvt_interval = 24;
  rc.net.heartbeat_interval_ms = 5;
  rc.net.heartbeat_timeout_ms = 400;
  return rc;
}

std::chrono::seconds watchdog_limit() {
  // Override for debugging hangs locally: VSIM_TEST_WATCHDOG_S=20.
  if (const char* s = std::getenv("VSIM_TEST_WATCHDOG_S"))
    return std::chrono::seconds(std::atoi(s));
  // Sanitizer CI sets VSIM_TIME_SCALE; the engine stretches its liveness
  // budgets by it, so the watchdog must stretch too.
  return std::chrono::seconds(
      static_cast<long>(120 * pdes::time_scale()));
}

RunStats run_distributed(Built& b, RunConfig rc, const char* label,
                         pdes::Partition* final_part = nullptr) {
  const auto part =
      partition::round_robin(b.graph->size(), rc.num_workers);
  DistributedEngine eng(*b.graph, part, rc);
  testutil::Watchdog wd(label, watchdog_limit(),
                        [&eng](std::FILE* f) { eng.debug_dump(f); });
  eng.set_commit_hook(b.recorder->hook());
  RunStats st = eng.run();
  if (final_part != nullptr) *final_part = eng.partition();
  return st;
}

// Four OS processes over a real socket mesh commit exactly the oracle's
// traces, on both test circuits.
TEST(Distributed, FourRankSocketRunMatchesOracle) {
  SKIP_UNDER_TSAN();
  struct Case {
    const char* name;
    Built (*build)();
    PhysTime until;
  };
  const Case cases[] = {{"gates", &build_gates, 600},
                        {"fsm", &build_fsm, 250}};
  for (const Case& tc : cases) {
    Built ref = tc.build();
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(tc.until);

    Built par = tc.build();
    const RunStats st = run_distributed(
        par, dist_config(tc.until), "Distributed.FourRankSocketRun");
    ASSERT_FALSE(st.config_error.has_value())
        << tc.name << ": " << st.config_error->str();
    EXPECT_FALSE(st.deadlocked) << tc.name;
    EXPECT_FALSE(st.transport_error.has_value())
        << tc.name << ": " << st.transport_error->str();
    EXPECT_FALSE(st.recovery_error.has_value()) << tc.name;
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << tc.name;
    EXPECT_EQ(st.per_worker.size(), 4u) << tc.name;
    EXPECT_GT(st.gvt_rounds, 0u) << tc.name;
    // Real traffic crossed the sockets, and every rank reported in.
    EXPECT_GT(st.metrics.counter(obs::Metric::kNetFramesSent), 0u) << tc.name;
    EXPECT_GT(st.metrics.counter(obs::Metric::kNetFramesRecv), 0u) << tc.name;
    EXPECT_GT(st.transport.data_sent, 0u) << tc.name;
    std::uint64_t rank_events = 0;
    for (const auto& w : st.per_worker) rank_events += w.events;
    EXPECT_GT(rank_events, 0u) << tc.name;
  }
}

// Seeded chaos (drops, duplicates, reordering, short blackouts) injected on
// top of the *real* socket wire: the channel layer must repair everything.
TEST(Distributed, ChaosOnRealWireMatchesOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  FaultPlan& fp = rc.transport.faults;
  fp.seed = 7;
  fp.drop = 0.15;
  fp.duplicate = 0.08;
  fp.reorder = 0.30;
  fp.blackout = 0.01;
  fp.blackout_span = 6;
  const RunStats st =
      run_distributed(par, rc, "Distributed.ChaosOnRealWire");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value())
      << st.transport_error->str();
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  // The plan must have actually mangled live socket traffic, and the
  // reliable layer must have repaired it.
  EXPECT_GT(st.transport.dropped, 0u);
  EXPECT_GT(st.transport.retransmits, 0u);
  EXPECT_GT(st.transport.acks_sent, 0u);
}

// A rank killed with SIGKILL mid-run: the coordinator notices (reaped child
// or missed network heartbeats), rolls every survivor back to the last
// global checkpoint, redistributes the dead rank's LPs, and the finished
// run is still bit-identical to the oracle.
TEST(Distributed, SigkilledRankRecoversToOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  rc.checkpoint.period = 2;
  // raise(SIGKILL) on rank 2 at its 60th event -- a hard processor kill,
  // nothing is flushed.
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 60});
  pdes::Partition final_part;
  const RunStats st = run_distributed(
      par, rc, "Distributed.SigkilledRankRecovers", &final_part);
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value())
      << st.transport_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_GT(st.checkpoint.checkpoints, 0u);
  EXPECT_GT(st.checkpoint.lps_restored, 0u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  // The dead rank's LPs were adopted by survivors.
  for (const std::uint32_t owner : final_part) EXPECT_NE(owner, 2u);
}

// Two ranks die at different points; two rounds of recovery.
TEST(Distributed, TwoDeathsTwoRecoveries) {
  SKIP_UNDER_TSAN();
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(250);

  Built par = build_fsm();
  RunConfig rc = dist_config(250);
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 40});
  rc.transport.faults.crashes.push_back(WorkerCrash{3, 90});
  const RunStats st =
      run_distributed(par, rc, "Distributed.TwoDeathsTwoRecoveries");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 2u);
  EXPECT_GE(st.checkpoint.recoveries, 2u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Chaos on the wire *and* a SIGKILL: fault injection must replay
// deterministically through the recovery (per-rank fault-cursor rings), so
// the rejoined timeline still matches the oracle.
TEST(Distributed, ChaosPlusKillStillMatchesOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  rc.checkpoint.period = 2;
  FaultPlan& fp = rc.transport.faults;
  fp.seed = 21;
  fp.drop = 0.10;
  fp.duplicate = 0.05;
  fp.reorder = 0.20;
  fp.crashes.push_back(WorkerCrash{1, 80});
  const RunStats st =
      run_distributed(par, rc, "Distributed.ChaosPlusKill");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  EXPECT_GT(st.transport.dropped, 0u);
}

// A transient connection loss (kernel buffers discarded, reconnect with
// exponential backoff) must heal without dropping or duplicating a single
// committed event.
TEST(Distributed, TransientDisconnectHealsWithoutLoss) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  // Hard-close two busy links mid-run; the victims must redial and the
  // channel layer must retransmit whatever the closed socket swallowed.
  // 1->2 is busy by construction (the partition splits the gate chain);
  // 2->1 is busy because it carries the acks for 1->2's data frames.
  rc.net.disconnects.push_back(NetConfig::Disconnect{1, 2, 5});
  rc.net.disconnects.push_back(NetConfig::Disconnect{2, 1, 3});
  const RunStats st =
      run_distributed(par, rc, "Distributed.TransientDisconnectHeals");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value())
      << st.transport_error->str();
  EXPECT_FALSE(st.recovery_error.has_value());
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  // Both injected disconnects fired and both links were re-established.
  EXPECT_GE(st.metrics.counter(obs::Metric::kNetDisconnects), 2u);
  EXPECT_GE(st.metrics.counter(obs::Metric::kNetReconnects), 2u);
}

// Determinism: same seeds, same cluster -> same committed traces across two
// whole multi-process runs (the distributed analogue of ChaosDeterminism).
TEST(Distributed, SameSeedsSameTraces) {
  SKIP_UNDER_TSAN();
  auto run_once = [](Built& b) {
    RunConfig rc = dist_config(250);
    rc.checkpoint.period = 3;
    FaultPlan& fp = rc.transport.faults;
    fp.seed = 42;
    fp.drop = 0.08;
    fp.reorder = 0.15;
    fp.crashes.push_back(WorkerCrash{2, 50});
    return run_distributed(b, rc, "Distributed.SameSeedsSameTraces");
  };
  Built a = build_fsm();
  const RunStats sa = run_once(a);
  Built b = build_fsm();
  const RunStats sb = run_once(b);
  ASSERT_FALSE(sa.recovery_error.has_value());
  ASSERT_FALSE(sb.recovery_error.has_value());
  EXPECT_EQ(sa.checkpoint.crashes, sb.checkpoint.crashes);
  EXPECT_EQ(TraceRecorder::diff(*a.recorder, *b.recorder), "");
}

// The coordinator itself is SIGKILLed mid-run.  Rank 1 -- the lowest
// surviving checkpoint replica -- must notice the silence, promote itself
// under a higher epoch term, re-emit its retained commit batches, recover
// the survivors from its replicated spill, and finish bit-identical to the
// oracle with rank 0's LPs adopted.
TEST(Distributed, CoordinatorKillRecoversToOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{0, 60});
  pdes::Partition final_part;
  const RunStats st = run_distributed(
      par, rc, "Distributed.CoordinatorKillRecovers", &final_part);
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value());
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(st.final_coordinator, 1u);
  EXPECT_GT(st.final_epoch, 0u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  for (const std::uint32_t owner : final_part) EXPECT_NE(owner, 0u);
}

// The coordinator dies AND a plain worker dies later: one succession plus
// one ordinary recovery, both run by the promoted rank 1.
TEST(Distributed, CoordinatorPlusWorkerKill) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{0, 60});
  rc.transport.faults.crashes.push_back(WorkerCrash{3, 90});
  const RunStats st =
      run_distributed(par, rc, "Distributed.CoordinatorPlusWorkerKill");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 2u);
  // Both deaths may land in one detection window and be retired by a
  // single recovery pass -- one or two recoveries are both legitimate.
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(st.final_coordinator, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Seeded wire chaos on top of a coordinator kill: the promoted successor
// inherits the fault-cursor replay discipline, so the rejoined timeline
// still matches the oracle through drops, dups and reordering.
TEST(Distributed, ChaosPlusCoordinatorKill) {
  SKIP_UNDER_TSAN();
  Built ref = build_gates();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(600);

  Built par = build_gates();
  RunConfig rc = dist_config(600);
  rc.checkpoint.period = 2;
  FaultPlan& fp = rc.transport.faults;
  fp.seed = 33;
  fp.drop = 0.10;
  fp.duplicate = 0.05;
  fp.reorder = 0.20;
  fp.crashes.push_back(WorkerCrash{0, 80});
  const RunStats st =
      run_distributed(par, rc, "Distributed.ChaosPlusCoordinatorKill");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_EQ(st.final_coordinator, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  EXPECT_GT(st.transport.dropped, 0u);
}

// Coordinators 0 and 1 both die.  With three checkpoint replicas rank 2
// holds every snapshot, so whichever way the deaths interleave (rank 1 may
// or may not get its own promotion in first), rank 2 ends up coordinating
// and the committed trace is still exactly the oracle's -- the strongest
// exercise of the ack-gated release rule.
TEST(Distributed, CascadingCoordinatorDeaths) {
  SKIP_UNDER_TSAN();
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(250);

  Built par = build_fsm();
  RunConfig rc = dist_config(250);
  rc.checkpoint.period = 2;
  rc.checkpoint.replicas = 3;
  rc.transport.faults.crashes.push_back(WorkerCrash{0, 40});
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 90});
  const RunStats st = run_distributed(
      par, rc, "Distributed.CascadingCoordinatorDeaths");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 2u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(st.final_coordinator, 2u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Succession is deterministic: the same seed and the same fault plan give
// the same successor, the same epoch, the same crash accounting and the
// same committed traces across two whole multi-process runs.
TEST(Distributed, SuccessionIsDeterministic) {
  SKIP_UNDER_TSAN();
  auto run_once = [](Built& b) {
    RunConfig rc = dist_config(250);
    rc.checkpoint.period = 3;
    FaultPlan& fp = rc.transport.faults;
    fp.seed = 97;
    fp.drop = 0.05;
    fp.reorder = 0.10;
    fp.crashes.push_back(WorkerCrash{0, 50});
    return run_distributed(b, rc, "Distributed.SuccessionIsDeterministic");
  };
  Built a = build_fsm();
  const RunStats sa = run_once(a);
  Built b = build_fsm();
  const RunStats sb = run_once(b);
  ASSERT_FALSE(sa.recovery_error.has_value()) << sa.recovery_error->str();
  ASSERT_FALSE(sb.recovery_error.has_value()) << sb.recovery_error->str();
  EXPECT_EQ(sa.final_coordinator, 1u);
  EXPECT_EQ(sa.final_coordinator, sb.final_coordinator);
  EXPECT_EQ(sa.final_epoch, sb.final_epoch);
  EXPECT_EQ(sa.checkpoint.crashes, sb.checkpoint.crashes);
  EXPECT_EQ(sa.checkpoint.recoveries, sb.checkpoint.recoveries);
  EXPECT_EQ(TraceRecorder::diff(*a.recorder, *b.recorder), "");
}

// Durable spill end to end: a run that dies past its recovery budget leaves
// an atomic spill directory; a fresh resume=true run -- pointed at the same
// directory now also littered with torn and corrupt snapshots -- restores
// from the newest valid one and finishes the exact oracle trace.  The two
// runs share one TraceRecorder, so the released prefix and the resumed
// suffix must concatenate seamlessly (no gap, no duplicate).
TEST(Distributed, ResumeFromSpillContinuesTrace) {
  SKIP_UNDER_TSAN();
  Built ref = build_fsm();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(250);

  char tmpl[] = "/tmp/vsim-resume-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string spill_dir = tmpl;

  Built par = build_fsm();
  {
    RunConfig rc = dist_config(250);
    rc.checkpoint.period = 2;
    rc.checkpoint.replicas = 1;  // release == spill frontier, exactly
    rc.checkpoint.max_recoveries = 1;
    rc.checkpoint.spill_dir = spill_dir;
    // Three scheduled deaths against a budget of one: even if the first
    // two land in the same detection window (one recovery pass retires
    // both), the third -- far past the first recovery -- still exhausts
    // the budget, so run1 deterministically dies with work left undone.
    rc.transport.faults.crashes.push_back(WorkerCrash{1, 40});
    rc.transport.faults.crashes.push_back(WorkerCrash{2, 80});
    rc.transport.faults.crashes.push_back(WorkerCrash{3, 130});
    const RunStats st = run_distributed(
        par, rc, "Distributed.ResumeFromSpill.run1");
    ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
    ASSERT_TRUE(st.recovery_error.has_value());  // budget exhausted
    EXPECT_GT(st.checkpoint.disk_bytes, 0u);
  }

  // Adversarial litter: a torn write (truncated copy of a real snapshot)
  // and outright garbage, both with round numbers newer than any valid
  // snapshot.  The resume scan must skip them, not die on them.
  {
    std::string victim;
    for (const auto& e : std::filesystem::directory_iterator(spill_dir))
      if (e.path().extension() == ".bin") victim = e.path().string();
    ASSERT_FALSE(victim.empty());
    std::ifstream in(victim, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream torn(spill_dir + "/ckpt-999998.bin", std::ios::binary);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
    std::ofstream junk(spill_dir + "/ckpt-999999.bin", std::ios::binary);
    junk << "this is not a checkpoint";
  }

  {
    RunConfig rc = dist_config(250);
    rc.checkpoint.period = 2;
    rc.checkpoint.replicas = 1;
    rc.checkpoint.spill_dir = spill_dir;
    rc.checkpoint.resume = true;
    const RunStats st = run_distributed(
        par, rc, "Distributed.ResumeFromSpill.run2");
    ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
    ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
    EXPECT_FALSE(st.deadlocked);
  }
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  std::filesystem::remove_all(spill_dir);
}

// A rank death with fault tolerance off (no checkpoint period, no crash
// schedule would normally mean no deaths -- but defense in depth): the run
// must unwind with a structured RecoveryError, not hang.  We force the
// situation by scheduling a crash while keeping checkpointing enabled but
// exhausting the recovery budget.
TEST(Distributed, RecoveryBudgetExhaustionUnwindsStructured) {
  SKIP_UNDER_TSAN();
  Built par = build_fsm();
  RunConfig rc = dist_config(250);
  rc.checkpoint.period = 2;
  rc.checkpoint.max_recoveries = 1;
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 30});
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 60});
  const RunStats st = run_distributed(
      par, rc, "Distributed.RecoveryBudgetExhaustion");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_TRUE(st.recovery_error.has_value());
  EXPECT_EQ(st.recovery_error->recoveries_used, 1u);
  EXPECT_FALSE(st.recovery_error->message.empty());
  EXPECT_NE(st.recovery_error->str().find("budget"), std::string::npos)
      << st.recovery_error->str();
}

// ---- native codegen backend across rank boundaries ----
//
// A VHDL frontend design whose process bodies run as AOT-compiled shared
// objects (frontend/codegen.cpp).  The children inherit the dlopen()ed
// modules through fork, and process checkpoints use the body byte codec,
// so suspended compiled bodies must survive the full distributed stack:
// socket transport, rank death, and restore-from-checkpoint on a
// surviving rank.  Under sanitizer builds the backend falls back to the
// interpreter (by design), which keeps these rows green but vacuous.

const char kNativeVhdlSrc[] = R"(
  entity t is end t;
  architecture a of t is
    signal clk : std_logic := '0';
    signal d0 : std_logic := '0';
    signal cnt : std_logic_vector(3 downto 0) := "0000";
    signal sr : std_logic_vector(3 downto 0) := "0000";
    signal par : std_logic := '0';
    signal mix : std_logic_vector(3 downto 0) := "0000";
    signal tick : std_logic_vector(3 downto 0) := "0000";
  begin
    clkgen: process begin
      clk <= '1'; wait for 5 ns;
      clk <= '0'; wait for 5 ns;
    end process;
    stim: process begin
      wait for 7 ns; d0 <= '1';
      wait for 11 ns; d0 <= '0';
      wait for 6 ns; d0 <= '1';
      wait for 14 ns; d0 <= '0';
      wait;
    end process;
    counter: process (clk) begin
      if rising_edge(clk) then
        cnt <= cnt + 1;
      end if;
    end process;
    shreg: process (clk)
      variable v : std_logic_vector(3 downto 0) := "0000";
    begin
      if rising_edge(clk) then
        v := sr;
        sr(0) <= d0;
        sr(1) <= v(0);
        sr(2) <= v(1);
        sr(3) <= v(2);
      end if;
    end process;
    parity: process (cnt, sr) begin
      par <= ((cnt(0) xor cnt(1)) xor (cnt(2) xor cnt(3)))
             xor ((sr(0) xor sr(1)) xor (sr(2) xor sr(3)));
    end process;
    mixer: process (cnt, sr) begin
      mix <= (cnt xor sr) + 1;
    end process;
    timer: process
      variable n : integer := 0;
    begin
      wait for 9 ns;
      n := (n + 1) mod 16;
      tick <= to_unsigned(n, 4);
    end process;
  end a;
)";

Built build_native_vhdl(fe::Backend backend) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  fe::ElabOptions opt;
  opt.backend = backend;
  fe::elaborate_source(kNativeVhdlSrc, "t", *b.design, opt);
  std::vector<SignalId> probes;
  for (const char* name :
       {"t/cnt", "t/sr", "t/par", "t/mix", "t/tick", "t/d0"})
    probes.push_back(b.design->find_signal(name));
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

// Four OS ranks running compiled process bodies commit exactly the
// interpreted sequential oracle's traces.
TEST(Distributed, NativeCodegenFourRankMatchesOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_native_vhdl(fe::Backend::kInterp);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build_native_vhdl(fe::Backend::kNative);
  const RunStats st = run_distributed(
      par, dist_config(400), "Distributed.NativeCodegenFourRank");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_FALSE(st.recovery_error.has_value());
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  EXPECT_GT(st.metrics.counter(obs::Metric::kNetFramesSent), 0u);
#ifndef VSIM_SANITIZE_BUILD
  // The run above really executed compiled bodies (folded into the run's
  // metrics snapshot by absorb_run_stats via the obs process globals).
  EXPECT_GT(st.metrics.counter(obs::Metric::kNativeBodies), 0u);
#endif
}

// A SIGKILLed rank recovers from the last checkpoint with compiled bodies:
// the survivor decodes the dead rank's process snapshots into clones of
// its own dlopen()ed modules (warm codegen cache via fork), and the
// finished run is still bit-identical to the interpreted oracle.
TEST(Distributed, NativeCodegenSigkillRecoversToOracle) {
  SKIP_UNDER_TSAN();
  Built ref = build_native_vhdl(fe::Backend::kInterp);
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(400);

  Built par = build_native_vhdl(fe::Backend::kNative);
  RunConfig rc = dist_config(400);
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 60});
  pdes::Partition final_part;
  const RunStats st = run_distributed(
      par, rc, "Distributed.NativeCodegenSigkillRecovers", &final_part);
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_GT(st.checkpoint.lps_restored, 0u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
  for (const std::uint32_t owner : final_part) EXPECT_NE(owner, 2u);
}

}  // namespace
}  // namespace vsim
