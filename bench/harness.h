// Shared harness for the figure/table reproduction benches.
//
// Each bench binary regenerates one artefact of the paper's evaluation
// (Sec. 4): it builds the circuit, runs the sequential reference to obtain
// the baseline cost, then sweeps processor counts and synchronisation
// configurations on the deterministic machine-model engine and prints the
// speedup rows of the corresponding figure.  See DESIGN.md ("Substitutions")
// for why speedups come from the machine model on this single-core host.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "vhdl/kernel.h"

namespace vsim::bench {

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
};

using BuildFn = std::function<Built()>;

struct SweepResult {
  std::size_t workers;
  pdes::Configuration config;
  double speedup;
  pdes::RunStats stats;
};

/// Sequential baseline: total event cost of the reference run.
double sequential_cost(const BuildFn& build, PhysTime until);

/// One machine-model run; returns stats (makespan inside).
pdes::RunStats run_machine(const BuildFn& build, pdes::RunConfig rc,
                           bool bipartite_partition = false);

/// Initial placement schemes for the placement ablation.
enum class Placement { kRoundRobin, kBlocks, kBipartite };
[[nodiscard]] const char* to_string(Placement p);
[[nodiscard]] pdes::Partition make_placement(const pdes::LpGraph& graph,
                                             Placement place,
                                             std::size_t workers);

/// One machine-model run from an explicit initial placement.  When
/// `final_partition` is non-null it receives the end-of-run LP->worker map,
/// which differs from the initial one after dynamic rebalancing (or
/// redistribute recovery) -- callers use it to report the achieved cut.
pdes::RunStats run_machine(const BuildFn& build, pdes::RunConfig rc,
                           Placement place,
                           pdes::Partition* final_partition = nullptr);

class Report;

/// Prints one figure: speedup-vs-processors for the four configurations.
/// Returns all rows for further inspection.  `max_history` models finite
/// Time Warp memory per LP (the paper: "optimistic demands huge amounts of
/// memory"); 0 disables the cap.  When `report` is given, every cell is
/// also appended to it as a row (section = `title`) for BENCH_<name>.json.
std::vector<SweepResult> speedup_figure(
    const std::string& title, const BuildFn& build, PhysTime until,
    const std::vector<std::size_t>& workers,
    const std::vector<pdes::Configuration>& configs,
    std::size_t max_history = 128, Report* report = nullptr);

/// Formats a number with fixed precision.
std::string fmt(double v, int prec = 2);

}  // namespace vsim::bench
