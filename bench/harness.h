// Shared harness for the figure/table reproduction benches.
//
// Each bench binary regenerates one artefact of the paper's evaluation
// (Sec. 4): it builds the circuit, runs the sequential reference to obtain
// the baseline cost, then sweeps processor counts and synchronisation
// configurations on the deterministic machine-model engine and prints the
// speedup rows of the corresponding figure.  See DESIGN.md ("Substitutions")
// for why speedups come from the machine model on this single-core host.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "vhdl/kernel.h"

namespace vsim::bench {

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
};

using BuildFn = std::function<Built()>;

struct SweepResult {
  std::size_t workers;
  pdes::Configuration config;
  double speedup;
  pdes::RunStats stats;
};

/// Sequential baseline: total event cost of the reference run.
double sequential_cost(const BuildFn& build, PhysTime until);

/// One machine-model run; returns stats (makespan inside).
pdes::RunStats run_machine(const BuildFn& build, pdes::RunConfig rc,
                           bool bipartite_partition = false);

class Report;

/// Prints one figure: speedup-vs-processors for the four configurations.
/// Returns all rows for further inspection.  `max_history` models finite
/// Time Warp memory per LP (the paper: "optimistic demands huge amounts of
/// memory"); 0 disables the cap.  When `report` is given, every cell is
/// also appended to it as a row (section = `title`) for BENCH_<name>.json.
std::vector<SweepResult> speedup_figure(
    const std::string& title, const BuildFn& build, PhysTime until,
    const std::vector<std::size_t>& workers,
    const std::vector<pdes::Configuration>& configs,
    std::size_t max_history = 128, Report* report = nullptr);

/// Formats a number with fixed precision.
std::string fmt(double v, int prec = 2);

}  // namespace vsim::bench
