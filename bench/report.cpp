#include "bench/report.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace vsim::bench {

namespace {

// Stamped by CMake from `git rev-parse`; "unknown" outside a work tree.
const char* git_sha() {
#ifdef VSIM_GIT_SHA
  return VSIM_GIT_SHA;
#else
  return "unknown";
#endif
}

// Double-buffered pre-rendered partial report for the SIGINT/SIGTERM
// handler.  The main thread renders into the buffer the handler is NOT
// reading (it can't be: the handler only ever sees the published index),
// then publishes pointer + size + index with release stores.  The handler
// does open/write/close/_exit only -- all async-signal-safe.
std::string g_body[2];
std::atomic<const char*> g_data[2] = {nullptr, nullptr};
std::atomic<std::size_t> g_size[2] = {0, 0};
std::atomic<int> g_cur{-1};  ///< -1: disarmed
char g_path[512] = {0};

extern "C" void partial_flush_handler(int sig) {
  const int cur = g_cur.load(std::memory_order_acquire);
  if (cur >= 0 && g_path[0] != '\0') {
    const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const char* data = g_data[cur].load(std::memory_order_acquire);
      std::size_t left = g_size[cur].load(std::memory_order_acquire);
      while (data && left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n <= 0) break;
        data += n;
        left -= static_cast<std::size_t>(n);
      }
      (void)::write(fd, "\n", 1);
      ::close(fd);
    }
  }
  ::_exit(128 + sig);
}

void arm_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = partial_flush_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

Report::Report(std::string name) : name_(std::move(name)) {
  const std::string path = out_path();
  if (path.size() < sizeof(g_path)) {
    std::memcpy(g_path, path.c_str(), path.size() + 1);
    refresh_partial();
    arm_handlers();
  }
}

std::string Report::out_path() const {
  std::string path;
  if (const char* dir = std::getenv("VSIM_BENCH_DIR"); dir && *dir) {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  return path;
}

void Report::refresh_partial() const {
  const int next = (g_cur.load(std::memory_order_relaxed) + 1) & 1;
  g_body[next] = to_json(/*partial=*/true).dump(2);
  g_data[next].store(g_body[next].data(), std::memory_order_release);
  g_size[next].store(g_body[next].size(), std::memory_order_release);
  g_cur.store(next, std::memory_order_release);
}

void Report::set_config(const std::string& key, obs::Json value) {
  config_.emplace_back(key, std::move(value));
  refresh_partial();
}

void Report::add_row(const std::string& section, std::size_t workers,
                     const std::string& configuration, double speedup,
                     const pdes::RunStats& stats) {
  obs::JsonObject row;
  row.emplace_back("section", section);
  row.emplace_back("workers", static_cast<std::uint64_t>(workers));
  row.emplace_back("configuration", configuration);
  row.emplace_back("speedup", speedup);
  row.emplace_back("deadlocked", stats.deadlocked);
  row.emplace_back("metrics", stats.metrics.to_json());
  rows_.emplace_back(std::move(row));
  refresh_partial();
}

void Report::add_micro(const std::string& name, double real_ns, double cpu_ns,
                       std::uint64_t iterations) {
  obs::JsonObject row;
  row.emplace_back("name", name);
  row.emplace_back("real_ns", real_ns);
  row.emplace_back("cpu_ns", cpu_ns);
  row.emplace_back("iterations", iterations);
  micro_.emplace_back(std::move(row));
  refresh_partial();
}

obs::Json Report::to_json() const { return to_json(/*partial=*/false); }

obs::Json Report::to_json(bool partial) const {
  obs::JsonObject doc;
  doc.emplace_back("schema", kReportSchema);
  doc.emplace_back("name", name_);
  doc.emplace_back("git_sha", git_sha());
  if (partial) doc.emplace_back("partial", true);
  doc.emplace_back("config", config_);
  doc.emplace_back("rows", rows_);
  if (!micro_.empty()) doc.emplace_back("micro", micro_);
  return doc;
}

std::string Report::write() const {
  // The report is complete: a signal from here on must not clobber the
  // full file with a stale partial.
  g_cur.store(-1, std::memory_order_release);
  const std::string path = out_path();
  const std::string body = to_json().dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "report: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("report: %s\n", path.c_str());
  return path;
}

}  // namespace vsim::bench
