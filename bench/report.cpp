#include "bench/report.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace vsim::bench {

namespace {

// Stamped by CMake from `git rev-parse`; "unknown" outside a work tree.
const char* git_sha() {
#ifdef VSIM_GIT_SHA
  return VSIM_GIT_SHA;
#else
  return "unknown";
#endif
}

}  // namespace

Report::Report(std::string name) : name_(std::move(name)) {}

void Report::set_config(const std::string& key, obs::Json value) {
  config_.emplace_back(key, std::move(value));
}

void Report::add_row(const std::string& section, std::size_t workers,
                     const std::string& configuration, double speedup,
                     const pdes::RunStats& stats) {
  obs::JsonObject row;
  row.emplace_back("section", section);
  row.emplace_back("workers", static_cast<std::uint64_t>(workers));
  row.emplace_back("configuration", configuration);
  row.emplace_back("speedup", speedup);
  row.emplace_back("deadlocked", stats.deadlocked);
  row.emplace_back("metrics", stats.metrics.to_json());
  rows_.emplace_back(std::move(row));
}

void Report::add_micro(const std::string& name, double real_ns, double cpu_ns,
                       std::uint64_t iterations) {
  obs::JsonObject row;
  row.emplace_back("name", name);
  row.emplace_back("real_ns", real_ns);
  row.emplace_back("cpu_ns", cpu_ns);
  row.emplace_back("iterations", iterations);
  micro_.emplace_back(std::move(row));
}

obs::Json Report::to_json() const {
  obs::JsonObject doc;
  doc.emplace_back("schema", kReportSchema);
  doc.emplace_back("name", name_);
  doc.emplace_back("git_sha", git_sha());
  doc.emplace_back("config", config_);
  doc.emplace_back("rows", rows_);
  if (!micro_.empty()) doc.emplace_back("micro", micro_);
  return doc;
}

std::string Report::write() const {
  std::string path;
  if (const char* dir = std::getenv("VSIM_BENCH_DIR"); dir && *dir) {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_" + name_ + ".json";
  const std::string body = to_json().dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "report: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("report: %s\n", path.c_str());
  return path;
}

}  // namespace vsim::bench
