// Fig. 6 reproduction: speedup for the FSM circuit with zero gate delays
// (pure delta-cycle combinational logic), ~553 LPs, 1..16 processors,
// all four synchronisation configurations.
#include <cstdio>

#include "bench/harness.h"
#include "circuits/fsm.h"

using namespace vsim;

int main() {
  const PhysTime until = 1200;  // 60 clock cycles
  bench::BuildFn build = [] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::FsmParams p;  // defaults sized for ~553 LPs
    circuits::build_fsm(*b.design, p);
    b.design->finalize();
    return b;
  };

  const auto rows = bench::speedup_figure(
      "Fig. 6 -- Speedup for FSM (0 delay)", build, until,
      {1, 2, 4, 6, 8, 10, 12, 14, 16},
      {pdes::Configuration::kAllOptimistic,
       pdes::Configuration::kAllConservative, pdes::Configuration::kMixed,
       pdes::Configuration::kDynamic});

  // Sec. 4 observations: optimistic memory grows with processors.
  std::printf("# memory proxy (peak saved history entries, optimistic):\n");
  for (const auto& r : rows) {
    if (r.config == pdes::Configuration::kAllOptimistic)
      std::printf("#   P=%-3zu peak_history=%zu rollbacks=%llu\n", r.workers,
                  r.stats.peak_history(),
                  static_cast<unsigned long long>(r.stats.total_rollbacks()));
  }
  return 0;
}
