// Fig. 6 reproduction: speedup for the FSM circuit with zero gate delays
// (pure delta-cycle combinational logic), ~553 LPs, 1..16 processors,
// all four synchronisation configurations.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/fsm.h"

using namespace vsim;

int main() {
  const PhysTime until = 1200;  // 60 clock cycles
  bench::BuildFn build = [] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::FsmParams p;  // defaults sized for ~553 LPs
    circuits::build_fsm(*b.design, p);
    b.design->finalize();
    return b;
  };

  bench::Report report("fig6_fsm");
  report.set_config("circuit", "fsm");
  report.set_config("until", static_cast<std::uint64_t>(until));
  const auto rows = bench::speedup_figure(
      "Fig. 6 -- Speedup for FSM (0 delay)", build, until,
      {1, 2, 4, 6, 8, 10, 12, 14, 16},
      {pdes::Configuration::kAllOptimistic,
       pdes::Configuration::kAllConservative, pdes::Configuration::kMixed,
       pdes::Configuration::kDynamic},
      /*max_history=*/128, &report);

  // Sec. 4 observations: optimistic memory grows with processors.  The
  // memory proxy is total_history (sum of every LP's saved-state peak);
  // peak_history is the single worst LP, printed alongside for scale.
  std::printf("# memory proxy (saved history entries, optimistic):\n");
  for (const auto& r : rows) {
    if (r.config == pdes::Configuration::kAllOptimistic)
      std::printf("#   P=%-3zu total_history=%zu peak_history=%zu "
                  "rollbacks=%llu\n",
                  r.workers, r.stats.total_history(), r.stats.peak_history(),
                  static_cast<unsigned long long>(r.stats.total_rollbacks()));
  }
  report.write();
  return 0;
}
