// Fig. 8 reproduction: speedup for the Gray-Markel cascaded-lattice IIR
// filter at gate level (~870 LPs), 1..16 processors, four configurations.
#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/iir.h"

using namespace vsim;

int main() {
  const PhysTime until = 8000;  // 20 sample clocks
  bench::BuildFn build = [] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::IirParams p;  // defaults sized for ~870 LPs
    circuits::build_iir(*b.design, p);
    b.design->finalize();
    return b;
  };

  bench::Report report("fig8_iir");
  report.set_config("circuit", "iir");
  report.set_config("until", static_cast<std::uint64_t>(until));
  bench::speedup_figure(
      "Fig. 8 -- Speedup for Gray-Markel IIR filter (gate level)", build,
      until, {1, 2, 4, 6, 8, 10, 12, 14, 16},
      {pdes::Configuration::kAllOptimistic,
       pdes::Configuration::kAllConservative, pdes::Configuration::kMixed,
       pdes::Configuration::kDynamic},
      /*max_history=*/128, &report);
  report.write();
  return 0;
}
