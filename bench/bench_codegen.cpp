// Native-codegen backend vs the interpreter: per-event execution cost.
//
// Builds one arithmetic-heavy VHDL design twice -- Backend::kInterp and
// Backend::kNative -- and times the sequential engine's run() over the same
// horizon, best-of-N to shed scheduler noise.  Elaboration (and hence the
// one-off compile of the shared object) happens outside the timed region:
// the row measures steady-state event execution, which is what the backend
// exists to accelerate.  The native .so cache is warmed with a throwaway
// elaboration first, so repeated builds inside the sweep are dlopen-only.
//
// Emits BENCH_codegen.json with one speedup row (section "codegen",
// configuration "native-vs-interp").  The committed baseline keeps a
// deliberately conservative floor (1.4x vs ~1.9x measured on the reference
// host) so the >5% bench_diff gate trips on "codegen stopped helping" -- a
// silent fall-back to the interpreter lands at 1.0x, an emitted-code
// pessimisation erodes the ratio -- rather than on host-to-host wall-clock
// variance; the ratio of two same-host runs is already largely
// host-independent.  The raw per-event nanoseconds of both backends ride
// along as warn-only micro rows.
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "bench/report.h"
#include "frontend/elaborator.h"
#include "obs/metrics.h"
#include "pdes/sequential.h"
#include "vhdl/kernel.h"

using namespace vsim;

namespace {

// Arithmetic-heavy mix of the backend's hot shapes: clocked processes with
// integer variable arithmetic, a popcount-style for-loop, wide logic ops,
// a combinational xor tree, and a free-running timed process.
const char kBenchSrc[] = R"(
  entity bench is end bench;
  architecture a of bench is
    signal clk : std_logic := '0';
    signal a0 : std_logic_vector(7 downto 0) := "00000000";
    signal a1 : std_logic_vector(7 downto 0) := "00000001";
    signal acc : std_logic_vector(7 downto 0) := "00000000";
    signal mixv : std_logic_vector(7 downto 0) := "00000000";
    signal par : std_logic := '0';
    signal tick : std_logic_vector(7 downto 0) := "00000000";
  begin
    clkgen: process begin
      clk <= '1'; wait for 5 ns;
      clk <= '0'; wait for 5 ns;
    end process;
    counter: process (clk) begin
      if rising_edge(clk) then
        a0 <= a0 + 1;
      end if;
    end process;
    scramble: process (clk)
      variable n : integer := 0;
      variable g : integer := 0;
    begin
      if rising_edge(clk) then
        n := (n + 3) mod 256;
        g := (n * 5 + n mod 7) mod 256;
        a1 <= to_unsigned(g, 8);
      end if;
    end process;
    accum: process (clk)
      variable s : integer := 0;
      variable t : integer := 0;
    begin
      if rising_edge(clk) then
        s := to_integer(a1);
        for li in 0 to 7 loop
          if a0(li) = '1' then
            s := (s * 2 + 1) mod 256;
          end if;
          for lj in 0 to 7 loop
            s := (s * 31 + lj + 7) mod 65536;
          end loop;
        end loop;
        t := (s + to_integer(a0) * 5) mod 256;
        while t > 1 loop
          t := t / 2;
          s := (s + t) mod 65536;
        end loop;
        acc <= to_unsigned(s mod 256, 8);
      end if;
    end process;
    mixer: process (a0, a1, acc) begin
      mixv <= ((a0 xor a1) or (acc and a0)) xor ((a1 or acc) + 1);
    end process;
    parity: process (mixv) begin
      par <= ((mixv(0) xor mixv(1)) xor (mixv(2) xor mixv(3)))
             xor ((mixv(4) xor mixv(5)) xor (mixv(6) xor mixv(7)));
    end process;
    timer: process
      variable n : integer := 0;
    begin
      wait for 7 ns;
      n := (n * 3 + 1) mod 251;
      tick <= to_unsigned(n mod 256, 8);
    end process;
  end a;
)";

constexpr PhysTime kUntil = 20000;
constexpr int kReps = 5;

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
};

Built build(fe::Backend backend) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  fe::ElabOptions opt;
  opt.backend = backend;
  fe::elaborate_source(kBenchSrc, "bench", *b.design, opt);
  b.design->finalize();
  return b;
}

struct Timed {
  double event_ns = std::numeric_limits<double>::infinity();
  std::uint64_t events = 0;
  pdes::RunStats stats;
};

// One engine run over a freshly built design; elaboration stays outside
// the clock so the compile/dlopen cost never pollutes the per-event time.
void time_run(fe::Backend backend, Timed& best) {
  Built b = build(backend);
  pdes::SequentialEngine eng(*b.graph);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = eng.run(kUntil);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t events = r.stats.total_events();
  if (events == 0) return;
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(events);
  if (ns < best.event_ns) {
    best.event_ns = ns;
    best.events = events;
    best.stats = r.stats;
  }
}

}  // namespace

int main() {
  bench::Report report("codegen");
  report.set_config("until", static_cast<std::uint64_t>(kUntil));
  report.set_config("reps", std::uint64_t{kReps});

  // Throwaway native elaboration: pays the one-off compile so every timed
  // build below is a warm cache hit (hash + dlopen).
  build(fe::Backend::kNative);

  Timed interp, native;
  for (int rep = 0; rep < kReps; ++rep) {
    time_run(fe::Backend::kInterp, interp);
    time_run(fe::Backend::kNative, native);
  }

  const bool fell_back =
      native.stats.metrics.counter(obs::Metric::kNativeBodies) == 0;
  report.set_config("native_fell_back", fell_back);
  const double speedup =
      native.event_ns > 0 ? interp.event_ns / native.event_ns : 0.0;

  std::printf("codegen per-event cost (best of %d, until=%llu)\n", kReps,
              static_cast<unsigned long long>(kUntil));
  std::printf("  interp : %8.1f ns/event  (%llu events)\n", interp.event_ns,
              static_cast<unsigned long long>(interp.events));
  std::printf("  native : %8.1f ns/event  (%llu events)%s\n", native.event_ns,
              static_cast<unsigned long long>(native.events),
              fell_back ? "  [FELL BACK TO INTERPRETER]" : "");
  std::printf("  speedup: %.2fx\n", speedup);

  report.add_row("codegen", 1, "native-vs-interp", speedup, native.stats);
  report.add_micro("BM_InterpPerEvent", interp.event_ns, interp.event_ns,
                   interp.events);
  report.add_micro("BM_NativePerEvent", native.event_ns, native.event_ns,
                   native.events);
  report.write();
  return 0;
}
