// Fig. 4 (table) reproduction: arbitrary vs user-consistent simultaneous-
// event models, with and without lookahead, on 8 processors.
//
// Paper's findings reproduced here:
//  - the arbitrary model needs no lookahead (lookahead-free global sync);
//  - user-consistent *conservative* without lookahead deadlocks (strict
//    channel clocks cannot advance);
//  - with lookahead both models work, but pay the null-message overhead;
//  - for the zero-delay FSM even the lookahead variant deadlocks
//    (lookahead is zero through combinational paths);
//  - user-consistent *optimistic* works without lookahead but rolls back
//    on equal timestamps too.
#include <cstdio>

#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/dct.h"
#include "circuits/fsm.h"
#include "circuits/iir.h"

using namespace vsim;

namespace {

struct Row {
  const char* name;
  bench::BuildFn build;
  PhysTime until;
};

struct Col {
  const char* name;
  pdes::Configuration config;
  pdes::OrderingMode ordering;
  pdes::ConservativeStrategy strategy;
  bool lookahead;
};

pdes::RunStats run_cell(const Row& row, const Col& col) {
  pdes::RunConfig rc;
  rc.num_workers = 8;
  rc.configuration = col.config;
  rc.ordering = col.ordering;
  rc.strategy = col.strategy;
  rc.use_lookahead = col.lookahead;
  rc.until = row.until;
  return bench::run_machine(row.build, rc);
}

}  // namespace

int main() {
  const Row rows[] = {
      {"FSM", [] {
         bench::Built b;
         b.graph = std::make_unique<pdes::LpGraph>();
         b.design = std::make_unique<vhdl::Design>(*b.graph);
         circuits::FsmParams p;
         circuits::build_fsm(*b.design, p);
         b.design->finalize();
         return b;
       }, 600},
      {"IIR", [] {
         bench::Built b;
         b.graph = std::make_unique<pdes::LpGraph>();
         b.design = std::make_unique<vhdl::Design>(*b.graph);
         circuits::IirParams p;
         circuits::build_iir(*b.design, p);
         b.design->finalize();
         return b;
       }, 4000},
      {"DCT", [] {
         bench::Built b;
         b.graph = std::make_unique<pdes::LpGraph>();
         b.design = std::make_unique<vhdl::Design>(*b.graph);
         circuits::DctParams p;
         circuits::build_dct(*b.design, p);
         b.design->finalize();
         return b;
       }, 3000},
  };

  using C = pdes::Configuration;
  using O = pdes::OrderingMode;
  using S = pdes::ConservativeStrategy;
  const Col cols[] = {
      // Conservative columns.
      {"cons/arb/-la", C::kAllConservative, O::kArbitrary, S::kGlobalSync,
       false},
      {"cons/arb/+la", C::kAllConservative, O::kArbitrary, S::kNullMessage,
       true},
      {"cons/user/+la", C::kAllConservative, O::kUserConsistent,
       S::kNullMessage, true},
      {"cons/user/-la", C::kAllConservative, O::kUserConsistent,
       S::kNullMessage, false},
      // Optimistic columns (lookahead-independent).
      {"opt/arb", C::kAllOptimistic, O::kArbitrary, S::kGlobalSync, false},
      {"opt/user", C::kAllOptimistic, O::kUserConsistent, S::kGlobalSync,
       false},
  };

  bench::Report report("fig4_ordering");
  report.set_config("workers", std::uint64_t{8});

  std::printf(
      "# Fig. 4 -- arbitrary vs user-consistent simultaneous-event models\n"
      "# machine-model cost (work units) on 8 processors; 'deadlock' where\n"
      "# the configuration cannot make progress\n");
  std::printf("%-8s", "circuit");
  for (const Col& c : cols) std::printf("%16s", c.name);
  std::printf("\n");
  for (const Row& r : rows) {
    const double seq = bench::sequential_cost(r.build, r.until);
    std::printf("%-8s", r.name);
    for (const Col& c : cols) {
      const pdes::RunStats st = run_cell(r, c);
      const double cost = st.deadlocked ? -1.0 : st.makespan;
      std::printf("%16s",
                  cost < 0 ? "deadlock" : bench::fmt(cost, 0).c_str());
      std::fflush(stdout);
      report.add_row(r.name, 8, c.name, st.deadlocked ? 0.0 : seq / cost,
                     st);
    }
    std::printf("\n");
  }
  report.write();
  return 0;
}
