// Wall-clock microbenchmarks (google-benchmark): raw engine throughput and
// kernel primitive costs on this host.  These complement the machine-model
// figures with real measurements of the implementation itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/fsm.h"
#include "partition/partition.h"
#include "pdes/event_queue.h"
#include "pdes/lp_runtime.h"
#include "pdes/mailbox.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/waveform.h"

using namespace vsim;

namespace {

bench::Built make_fsm(std::size_t lanes) {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = lanes;
  circuits::build_fsm(*b.design, p);
  b.design->finalize();
  return b;
}

void BM_SequentialEngineThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    bench::Built b = make_fsm(static_cast<std::size_t>(state.range(0)));
    pdes::SequentialEngine eng(*b.graph);
    const auto r = eng.run(400);
    events += r.stats.total_events();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialEngineThroughput)->Arg(4)->Arg(10);

void BM_MachineEngineThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    bench::Built b = make_fsm(4);
    pdes::RunConfig rc;
    rc.num_workers = static_cast<std::size_t>(state.range(0));
    rc.configuration = pdes::Configuration::kDynamic;
    rc.until = 400;
    pdes::MachineEngine eng(
        *b.graph, partition::round_robin(b.graph->size(), rc.num_workers),
        rc);
    events += eng.run().total_events();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineEngineThroughput)->Arg(1)->Arg(4)->Arg(16);

// ---- Message-delivery microbench ----------------------------------------
//
// A token ring of plain PDES LPs under round-robin partitioning: every hop
// is a remote send, so the run is dominated by the threaded engine's
// mailbox/transport path rather than by event execution.  The reliable
// channel stack is on -- this is the path the overhaul batches end to end:
// per-destination send buffers published as one MPSC batch per slice, and
// one cumulative ack per link per drained batch where the old design
// emitted one ack packet per delivery (~17x the ack traffic on this ring).

struct RingState final : pdes::LpState {
  std::uint64_t count = 0;
};

class RingLp final : public pdes::LogicalProcess {
 public:
  RingLp(std::string name, pdes::LpId next, PhysTime until)
      : LogicalProcess(std::move(name)), next_(next), until_(until) {}

  void simulate(const pdes::Event& ev, pdes::SimContext& ctx) override {
    ++count_;
    if (ev.ts.pt < until_) ctx.send(next_, {ev.ts.pt + 1, 0}, 1, {});
  }
  std::unique_ptr<pdes::LpState> save_state() const override {
    auto s = std::make_unique<RingState>();
    s->count = count_;
    return s;
  }
  void restore_state(const pdes::LpState& s) override {
    count_ = static_cast<const RingState&>(s).count;
  }

 private:
  pdes::LpId next_;
  PhysTime until_;
  std::uint64_t count_ = 0;
};

void BM_MessageDelivery(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRing = 64;
  constexpr std::size_t kTokens = 16;
  constexpr PhysTime kUntil = 512;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    pdes::LpGraph graph;
    for (std::size_t i = 0; i < kRing; ++i)
      graph.add(std::make_unique<RingLp>(
          "ring" + std::to_string(i),
          static_cast<pdes::LpId>((i + 1) % kRing), kUntil));
    for (std::size_t t = 0; t < kTokens; ++t)
      graph.post_initial(static_cast<pdes::LpId>(t * (kRing / kTokens)),
                         {1, 0}, 1);
    pdes::RunConfig rc;
    rc.num_workers = workers;
    rc.configuration = pdes::Configuration::kAllOptimistic;
    rc.gvt_interval = 256;
    rc.until = kUntil;
    rc.transport.reliable = true;
    pdes::ThreadedEngine eng(graph, partition::round_robin(kRing, workers),
                             rc);
    const auto st = eng.run();
    delivered += st.transport.delivered;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MessageDelivery)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- Mailbox primitive pair ---------------------------------------------
//
// Head-to-head measurement of the overhauled delivery path against the
// design it replaced, kept in-binary so BENCH_microbench.json always
// records the before/after ratio on the host that produced it.
//
// Arg = number of producer workers feeding one consumer.  Both variants
// replay the engine's per-iteration op pattern deterministically from one
// thread -- each producer sends an event-slice worth of packets, then the
// consumer drains once -- so the bench measures the per-operation cost
// difference (per-packet lock round-trip vs. buffered append + one publish
// per batch) rather than this host's thread-scheduling noise.  The
// concurrency properties of the real MPSC path are covered by
// tests/test_threaded.cpp and the TSan preset in ci.sh, and contention on
// a real multiprocessor only widens this gap (the mutex line bounces
// between cores; the batch path touches shared state once per slice).
//
// MutexMailboxRef reproduces the pre-overhaul threaded-engine mailbox
// verbatim (struct Mailbox { std::mutex m; std::vector<Packet> q; }): one
// mutex round-trip per delivered packet on the producer side and a locked
// sweep on the consumer side.

constexpr std::size_t kMailboxRounds = 256;
constexpr std::size_t kMailboxSlice = 16;  // the engine's event slice

class MutexMailboxRef {
 public:
  void push(pdes::Packet&& p) {
    std::lock_guard<std::mutex> lk(m_);
    q_.push_back(std::move(p));
  }
  std::size_t drain(std::vector<pdes::Packet>& out) {
    std::lock_guard<std::mutex> lk(m_);
    const std::size_t n = q_.size();
    for (pdes::Packet& p : q_) out.push_back(std::move(p));
    q_.clear();
    return n;
  }

 private:
  std::mutex m_;
  std::vector<pdes::Packet> q_;
};

pdes::Packet make_packet(std::uint32_t src, std::uint64_t uid) {
  pdes::Packet p;
  p.src = src;
  p.dst = 0;
  p.ev.uid = uid;
  return p;
}

void BM_MailboxDelivery(benchmark::State& state) {
  const std::size_t producers = static_cast<std::size_t>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    pdes::BatchMailbox box(producers);
    // Per-producer outbox buffer published as one batch per slice -- the
    // engine's send path (threaded.cpp flush_outboxes).
    std::vector<std::vector<pdes::Packet>> bufs(producers);
    std::vector<pdes::Packet> out;
    std::size_t got = 0;
    for (std::size_t r = 0; r < kMailboxRounds; ++r) {
      for (std::size_t p = 0; p < producers; ++p) {
        for (std::size_t i = 0; i < kMailboxSlice; ++i)
          bufs[p].push_back(
              make_packet(static_cast<std::uint32_t>(p), r * kMailboxSlice + i));
        box.push_batch(static_cast<std::uint32_t>(p), bufs[p]);
      }
      out.clear();
      got += box.drain(out);
    }
    benchmark::DoNotOptimize(got);
    delivered += got;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MailboxDelivery)->Arg(2)->Arg(8);

void BM_MailboxDeliveryMutexRef(benchmark::State& state) {
  const std::size_t producers = static_cast<std::size_t>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    MutexMailboxRef box;
    std::vector<pdes::Packet> out;
    std::size_t got = 0;
    for (std::size_t r = 0; r < kMailboxRounds; ++r) {
      for (std::size_t p = 0; p < producers; ++p) {
        for (std::size_t i = 0; i < kMailboxSlice; ++i)
          box.push(
              make_packet(static_cast<std::uint32_t>(p), r * kMailboxSlice + i));
      }
      out.clear();
      got += box.drain(out);
    }
    benchmark::DoNotOptimize(got);
    delivered += got;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MailboxDeliveryMutexRef)->Arg(2)->Arg(8);

// ---- Event-queue microbench ---------------------------------------------
//
// Direct LpRuntime pending-queue churn: bulk out-of-order inserts, then an
// anti-message annihilation sweep over half the queue, then drain.  The
// annihilation half is the old std::set's worst case (linear uid scan per
// anti-message) and the lazy-deletion index's best.

class SinkLp final : public pdes::LogicalProcess {
 public:
  explicit SinkLp(std::string name) : LogicalProcess(std::move(name)) {}
  void simulate(const pdes::Event&, pdes::SimContext&) override {}
  std::unique_ptr<pdes::LpState> save_state() const override {
    return std::make_unique<pdes::LpState>();
  }
  void restore_state(const pdes::LpState&) override {}
};

class NullRouter final : public pdes::Router {
 public:
  void route(pdes::Event&&) override {}
};

void BM_EventQueueChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SinkLp lp("sink");
  NullRouter router;
  std::uint64_t ops = 0;
  const VirtualTime bound{1u << 20, 0};
  for (auto _ : state) {
    pdes::LpRuntime rt(&lp, pdes::OrderingMode::kArbitrary,
                       pdes::ConservativeStrategy::kGlobalSync,
                       pdes::SyncMode::kConservative, 0);
    std::uint64_t x = pdes::splitmix64(n * 1000003u + 17);
    for (std::size_t i = 0; i < n; ++i) {
      pdes::Event ev;
      ev.ts = {static_cast<PhysTime>(1 + (x = pdes::splitmix64(x)) % 65536),
               0};
      ev.src = 1;
      ev.dst = 0;
      ev.uid = 1000 + i;
      ev.kind = 1;
      rt.enqueue(std::move(ev), router);
    }
    for (std::size_t i = 0; i < n / 2; ++i) {
      pdes::Event anti;
      anti.ts = kTimeZero;  // annihilation matches by uid, not timestamp
      anti.src = 1;
      anti.dst = 0;
      anti.uid = 1000 + 2 * i;
      anti.kind = 1;
      anti.negative = true;
      rt.enqueue(std::move(anti), router);
    }
    while (rt.peek(bound, 1u << 20) == pdes::Eligibility::kReady)
      rt.process_next(router);
    ops += n + n / 2;
  }
  state.counters["ops/s"] = benchmark::Counter(static_cast<double>(ops),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueChurn)->Arg(256)->Arg(4096);

// ---- Pending-queue primitive pair ---------------------------------------
//
// The same churn pattern (bulk insert, annihilate half by uid, drain)
// against the raw structures, old vs new, with a Threads(8) variant so the
// JSON records the ratio at 8 workers (each thread churns its own queue,
// exactly like 8 workers each owning their LPs' pending sets).  The set
// reference reproduces the pre-overhaul LpRuntime path: an ordered
// std::set<Event, EventOrder> whose annihilation is a linear uid scan.

pdes::Event churn_event(std::uint64_t& x, std::size_t i, bool negative) {
  pdes::Event ev;
  ev.ts = {negative ? 0
                    : static_cast<PhysTime>(
                          1 + (x = pdes::splitmix64(x)) % 65536),
           0};
  ev.src = 1;
  ev.dst = 0;
  ev.uid = 1000 + (negative ? 2 * i : i);
  ev.kind = 1;
  ev.negative = negative;
  return ev;
}

void BM_EventQueueOps(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pdes::PendingQueue q;
    std::uint64_t x = pdes::splitmix64(n * 1000003u + 17);
    for (std::size_t i = 0; i < n; ++i)
      q.push(churn_event(x, i, /*negative=*/false));
    for (std::size_t i = 0; i < n / 2; ++i)
      q.erase_uid(1000 + 2 * i);  // O(1) lazy-deletion mark
    while (!q.empty()) q.pop_top();
    ops += n + n / 2;
  }
  state.counters["ops/s"] = benchmark::Counter(static_cast<double>(ops),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueOps)->Arg(256)->Arg(4096)->Threads(1)->Threads(8)
    ->UseRealTime();

void BM_EventQueueOpsSetRef(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t ops = 0;
  for (auto _ : state) {
    std::set<pdes::Event, pdes::EventOrder> q;
    std::uint64_t x = pdes::splitmix64(n * 1000003u + 17);
    for (std::size_t i = 0; i < n; ++i)
      q.insert(churn_event(x, i, /*negative=*/false));
    for (std::size_t i = 0; i < n / 2; ++i) {
      const pdes::EventUid uid = 1000 + 2 * i;
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->uid == uid) {  // the old linear annihilation scan
          q.erase(it);
          break;
        }
      }
    }
    while (!q.empty()) q.erase(q.begin());
    ops += n + n / 2;
  }
  state.counters["ops/s"] = benchmark::Counter(static_cast<double>(ops),
                                               benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueOpsSetRef)->Arg(256)->Arg(4096)->Threads(1)->Threads(8)
    ->UseRealTime();

void BM_WaveformScheduleApply(benchmark::State& state) {
  vhdl::Waveform w(LogicVector{Logic::k0});
  PhysTime t = 0;
  for (auto _ : state) {
    ++t;
    w.schedule({t + 5, 1}, LogicVector{t % 2 ? Logic::k1 : Logic::k0},
               /*transport=*/false, {t, 0});
    benchmark::DoNotOptimize(w.apply_matured({t, 1}));
  }
}
BENCHMARK(BM_WaveformScheduleApply);

void BM_LogicResolution(benchmark::State& state) {
  const LogicVector a = LogicVector::from_string("01ZXWLH-U01ZXWLH");
  const LogicVector b = LogicVector::from_string("ZZZZZZZZZZZZZZZZ");
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve(a, b));
  }
}
BENCHMARK(BM_LogicResolution);

// Console reporter that also records every run into the machine-readable
// report (BENCH_microbench.json), so bench_diff.py can track wall-clock
// regressions alongside the machine-model figures.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::Report* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      rep_->add_micro(r.benchmark_name(), r.GetAdjustedRealTime(),
                      r.GetAdjustedCPUTime(),
                      static_cast<std::uint64_t>(r.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Report* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::Report report("microbench");

  // Deterministic machine-model speedup rows (FSM, dynamic configuration).
  // Unlike the wall-clock micro rows above -- which bench_diff.py treats as
  // warn-only because they vary with the host -- these are exact functions
  // of the protocol and cost model, so the CI baseline diff fails hard when
  // a change regresses them.
  {
    bench::BuildFn build = [] { return make_fsm(4); };
    constexpr PhysTime kUntil = 400;
    const double seq = bench::sequential_cost(build, kUntil);
    for (std::size_t p : {1, 4, 8, 16}) {
      pdes::RunConfig rc;
      rc.num_workers = p;
      rc.configuration = pdes::Configuration::kDynamic;
      rc.until = kUntil;
      const auto st = bench::run_machine(build, rc);
      report.add_row("model_fsm", p, "dynamic",
                     st.deadlocked ? 0.0 : seq / st.makespan, st);
    }
  }

  RecordingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
