// Wall-clock microbenchmarks (google-benchmark): raw engine throughput and
// kernel primitive costs on this host.  These complement the machine-model
// figures with real measurements of the implementation itself.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/fsm.h"
#include "partition/partition.h"
#include "pdes/sequential.h"
#include "vhdl/waveform.h"

using namespace vsim;

namespace {

bench::Built make_fsm(std::size_t lanes) {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  p.lanes = lanes;
  circuits::build_fsm(*b.design, p);
  b.design->finalize();
  return b;
}

void BM_SequentialEngineThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    bench::Built b = make_fsm(static_cast<std::size_t>(state.range(0)));
    pdes::SequentialEngine eng(*b.graph);
    const auto r = eng.run(400);
    events += r.stats.total_events();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialEngineThroughput)->Arg(4)->Arg(10);

void BM_MachineEngineThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    bench::Built b = make_fsm(4);
    pdes::RunConfig rc;
    rc.num_workers = static_cast<std::size_t>(state.range(0));
    rc.configuration = pdes::Configuration::kDynamic;
    rc.until = 400;
    pdes::MachineEngine eng(
        *b.graph, partition::round_robin(b.graph->size(), rc.num_workers),
        rc);
    events += eng.run().total_events();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineEngineThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_WaveformScheduleApply(benchmark::State& state) {
  vhdl::Waveform w(LogicVector{Logic::k0});
  PhysTime t = 0;
  for (auto _ : state) {
    ++t;
    w.schedule({t + 5, 1}, LogicVector{t % 2 ? Logic::k1 : Logic::k0},
               /*transport=*/false, {t, 0});
    benchmark::DoNotOptimize(w.apply_matured({t, 1}));
  }
}
BENCHMARK(BM_WaveformScheduleApply);

void BM_LogicResolution(benchmark::State& state) {
  const LogicVector a = LogicVector::from_string("01ZXWLH-U01ZXWLH");
  const LogicVector b = LogicVector::from_string("ZZZZZZZZZZZZZZZZ");
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolve(a, b));
  }
}
BENCHMARK(BM_LogicResolution);

// Console reporter that also records every run into the machine-readable
// report (BENCH_microbench.json), so bench_diff.py can track wall-clock
// regressions alongside the machine-model figures.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::Report* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      rep_->add_micro(r.benchmark_name(), r.GetAdjustedRealTime(),
                      r.GetAdjustedCPUTime(),
                      static_cast<std::uint64_t>(r.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Report* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::Report report("microbench");
  RecordingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
