// Machine-readable bench reports.
//
// Every bench binary accumulates its sweep results in a Report and writes
// `BENCH_<name>.json` (schema vsim.bench.report/v1) next to its stdout
// table: run configuration, per-P speedups, and the full metrics snapshot of
// every run (rollback / null-message / transport / checkpoint counters),
// stamped with the git SHA the binary was built from.  tools/bench_diff.py
// validates these files and compares two report sets for regressions.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "pdes/stats.h"

namespace vsim::bench {

class Report {
 public:
  /// `name` becomes the BENCH_<name>.json file stem (e.g. "fig4_ordering").
  ///
  /// Construction arms SIGINT/SIGTERM handlers that flush the rows recorded
  /// so far as a schema-valid BENCH_<name>.json with `"partial": true`, so
  /// an interrupted sweep (ctrl-C, CI timeout) still leaves a usable
  /// artifact instead of nothing.  The handler only writes a pre-rendered
  /// buffer (re-rendered after every add_*) and _exits -- everything it
  /// touches is async-signal-safe.  One report per process: the most
  /// recently constructed Report owns the handlers; write() disarms them.
  explicit Report(std::string name);

  /// Records a scalar of the bench's configuration (until, cap sweeps, ...).
  void set_config(const std::string& key, obs::Json value);

  /// Adds one sweep row.  `section` groups rows of multi-part benches (the
  /// ablation); single-figure benches pass the figure title.
  void add_row(const std::string& section, std::size_t workers,
               const std::string& configuration, double speedup,
               const pdes::RunStats& stats);

  /// Adds one google-benchmark style micro row (bench_microbench).
  void add_micro(const std::string& name, double real_ns, double cpu_ns,
                 std::uint64_t iterations);

  [[nodiscard]] obs::Json to_json() const;

  /// Writes BENCH_<name>.json into $VSIM_BENCH_DIR (created by the caller)
  /// or the working directory; prints the path. Returns it ("" on failure).
  std::string write() const;

 private:
  /// Re-renders the partial-report buffer the signal handler writes.
  void refresh_partial() const;
  [[nodiscard]] std::string out_path() const;
  [[nodiscard]] obs::Json to_json(bool partial) const;

  std::string name_;
  obs::JsonObject config_;
  obs::JsonArray rows_;
  obs::JsonArray micro_;
};

/// Current report schema identifier.
inline constexpr const char* kReportSchema = "vsim.bench.report/v1";

}  // namespace vsim::bench
