// Ablation benches for the design choices called out in DESIGN.md:
//  (a) GVT round interval: synchronisation frequency vs overhead;
//  (b) partitioning: the paper's naive round-robin vs the bipartite-aware
//      BFS scheme suggested in its "Remarks" section;
//  (c) optimistic memory pressure: capping saved history forces memory
//      stalls (the paper: "optimistic demands huge amounts of memory");
//  (f) fault tolerance: checkpoint period vs crash rate -- the capture tax
//      of short periods against the re-execution lost to each recovery;
//  (g) placement: static round-robin / blocks / bipartite-BFS vs dynamic
//      GVT-round rebalancing (blocks start + LP migration);
//  (h) clustering: flat one-LP-per-signal/process vs BFS-fused ClusterLps
//      on a 100k-signal netlist -- cluster size x P, with the memory proxy
//      and GVT scan volume before/after fusing.
//  (i) adaptation: the rate-based kDynamic controller vs its own ablated
//      variants on the IIR at P=16, the workload/scale cell where the old
//      single-window controller collapsed to ~0.26x of all-optimistic.
//
// Optional trailing args name sections (their report `section` tags, e.g.
// `placement adaptation`) and skip the rest -- CI gates those cells
// against the committed baseline without paying for the full sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/dct.h"
#include "circuits/fsm.h"
#include "circuits/iir.h"
#include "circuits/random_circuit.h"
#include "obs/metrics.h"
#include "partition/cluster.h"
#include "partition/partition.h"
#include "pdes/cluster.h"

using namespace vsim;

namespace {

bench::BuildFn fsm_build = [] {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::FsmParams p;
  circuits::build_fsm(*b.design, p);
  b.design->finalize();
  return b;
};

bench::BuildFn iir_build = [] {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::IirParams p;
  circuits::build_iir(*b.design, p);
  b.design->finalize();
  return b;
};

// Rate-skewed 3-bit counter lanes, the load-imbalance generator for the
// placement ablation.  Every lane is a fixed number of LPs (clock,
// inverter, 2 xor, 1 and, 3 dff + their signals) clocked at rates spanning
// `prefix`x..1x, so both naive static schemes are load-blind in a different
// way: `blocks` hands whole lanes out and overloads the fast-lane workers,
// while `round-robin`'s stride divides the lane stride, so one worker
// collects every lane's clock LP (the hottest position class).  Only
// observed-load migration can repair either.
void add_counter_lanes(circuits::CircuitBuilder& cb, int lanes,
                       const PhysTime (&half_periods)[4],
                       const char* prefix) {
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string tag =
        std::string(prefix) + std::to_string(lane) + "_";
    const auto clk = cb.wire(tag + "clk");
    cb.clock(clk, half_periods[lane % 4]);
    const auto q0 = cb.wire(tag + "q0");
    const auto q1 = cb.wire(tag + "q1");
    const auto q2 = cb.wire(tag + "q2");
    const auto nq0 = cb.wire(tag + "nq0");
    cb.gate(circuits::GateKind::kNot, {q0}, nq0);  // d0 = !q0
    const auto d1 = cb.wire(tag + "d1");
    cb.gate(circuits::GateKind::kXor, {q1, q0}, d1);
    const auto c1 = cb.wire(tag + "c1");
    cb.gate(circuits::GateKind::kAnd, {q0, q1}, c1);
    const auto d2 = cb.wire(tag + "d2");
    cb.gate(circuits::GateKind::kXor, {q2, c1}, d2);
    cb.dff(clk, nq0, q0);
    cb.dff(clk, d1, q1);
    cb.dff(clk, d2, q2);
  }
}

// Imbalanced FSM bank: nothing but skewed counter lanes.
bench::BuildFn fsm_imb_build = [] {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::CircuitBuilder cb(*b.design, /*gate_delay=*/1);
  const PhysTime half_periods[] = {5, 10, 20, 40};
  add_counter_lanes(cb, 16, half_periods, "l");
  b.design->finalize();
  return b;
};

// Imbalanced DCT: the paper's gate-level datapath plus a rate-skewed
// control counter bank (think clock-domain controllers beside a
// homogeneous datapath).  The datapath part is naturally count-balanced,
// so all the skew the static schemes must cope with comes from the bank --
// which neither copes with (see add_counter_lanes).
bench::BuildFn dct_imb_build = [] {
  bench::Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::DctParams p;
  p.n = 2;  // ablation-sized: the full 4x4 array is bench_fig10's job
  p.width = 3;
  circuits::build_dct(*b.design, p);
  circuits::CircuitBuilder cb(*b.design, /*gate_delay=*/1);
  const PhysTime half_periods[] = {4, 8, 16, 32};
  add_counter_lanes(cb, 8, half_periods, "ctrl");
  b.design->finalize();
  return b;
};

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> only(argv + 1, argv + argc);
  const auto want = [&only](const char* section) {
    if (only.empty()) return true;
    for (const std::string& s : only)
      if (s == section) return true;
    return false;
  };
  const PhysTime until = 800;
  const bool need_fsm_seq = want("gvt_interval") || want("transport_faults") ||
                            want("checkpointing") || want("history_cap");
  const double seq =
      need_fsm_seq ? bench::sequential_cost(fsm_build, until) : 0.0;
  bench::Report report("ablation");
  report.set_config("until_fsm", static_cast<std::uint64_t>(until));

  if (want("gvt_interval")) {
  std::printf("# Ablation (a): GVT interval sweep, FSM, dynamic, P=8\n");
  std::printf("%-10s%12s%12s%14s\n", "interval", "speedup", "rounds",
              "rollbacks");
  for (std::uint32_t interval : {8u, 16u, 32u, 64u, 128u, 256u}) {
    pdes::RunConfig rc;
    rc.num_workers = 8;
    rc.configuration = pdes::Configuration::kDynamic;
    rc.gvt_interval = interval;
    rc.until = until;
    const auto st = bench::run_machine(fsm_build, rc);
    std::printf("%-10u%12s%12llu%14llu\n", interval,
                bench::fmt(seq / st.makespan).c_str(),
                static_cast<unsigned long long>(st.gvt_rounds),
                static_cast<unsigned long long>(st.total_rollbacks()));
    std::fflush(stdout);
    report.add_row("gvt_interval", 8, "interval=" + std::to_string(interval),
                   seq / st.makespan, st);
  }
  }

  if (want("partitioning")) {
  std::printf("\n# Ablation (b): partitioning, IIR, dynamic\n");
  const PhysTime iuntil = 4000;
  const double iseq = bench::sequential_cost(iir_build, iuntil);
  {
    bench::Built probe = iir_build();
    std::printf("%-6s%16s%16s%12s%12s\n", "P", "round-robin", "bipartite",
                "cut(rr)", "cut(bfs)");
    for (std::size_t p : {2u, 4u, 8u, 16u}) {
      pdes::RunConfig rc;
      rc.num_workers = p;
      rc.configuration = pdes::Configuration::kDynamic;
      rc.until = iuntil;
      const auto rr = bench::run_machine(iir_build, rc, false);
      const auto bf = bench::run_machine(iir_build, rc, true);
      const auto prr = partition::round_robin(probe.graph->size(), p);
      const auto pbf = partition::bipartite_bfs(*probe.graph, p);
      std::printf("%-6zu%16s%16s%12zu%12zu\n", p,
                  bench::fmt(iseq / rr.makespan).c_str(),
                  bench::fmt(iseq / bf.makespan).c_str(),
                  partition::cut_size(*probe.graph, prr),
                  partition::cut_size(*probe.graph, pbf));
      std::fflush(stdout);
      report.add_row("partitioning", p, "round-robin", iseq / rr.makespan,
                     rr);
      report.add_row("partitioning", p, "bipartite", iseq / bf.makespan, bf);
    }
  }
  }

  if (want("cancellation")) {
  std::printf(
      "\n# Ablation (d): cancellation policy, aggressive vs lazy, P=8\n"
      "# (lazy suppresses anti-messages when re-execution regenerates the\n"
      "#  same messages -- frequent in digital logic where recomputation\n"
      "#  after a rollback often converges to identical values)\n");
  std::printf("%-10s%14s%14s%12s%12s\n", "circuit", "aggressive", "lazy",
              "anti(aggr)", "anti(lazy)");
  {
    struct Row {
      const char* name;
      const bench::BuildFn* build;
      PhysTime until;
    };
    const Row rows[] = {{"FSM", &fsm_build, 800}, {"IIR", &iir_build, 4000}};
    for (const Row& row : rows) {
      const double sc = bench::sequential_cost(*row.build, row.until);
      double mk[2];
      std::uint64_t anti[2];
      for (int lazy = 0; lazy < 2; ++lazy) {
        pdes::RunConfig rc;
        rc.num_workers = 8;
        rc.configuration = pdes::Configuration::kAllOptimistic;
        rc.cancellation = lazy ? pdes::CancellationPolicy::kLazy
                               : pdes::CancellationPolicy::kAggressive;
        rc.until = row.until;
        const auto st = bench::run_machine(*row.build, rc);
        mk[lazy] = st.makespan;
        anti[lazy] = 0;
        for (const auto& l : st.per_lp) anti[lazy] += l.anti_messages_sent;
        report.add_row(
            "cancellation", 8,
            std::string(row.name) + (lazy ? "/lazy" : "/aggressive"),
            sc / st.makespan, st);
      }
      std::printf("%-10s%14s%14s%12llu%12llu\n", row.name,
                  bench::fmt(sc / mk[0]).c_str(),
                  bench::fmt(sc / mk[1]).c_str(),
                  static_cast<unsigned long long>(anti[0]),
                  static_cast<unsigned long long>(anti[1]));
      std::fflush(stdout);
    }
  }
  }

  if (want("transport_faults")) {
  std::printf(
      "\n# Ablation (e): transport faults with reliable delivery, FSM, P=8\n"
      "# (drop/dup/reorder on the wire; the reliable channel repairs the\n"
      "#  stream, and its acks + retransmissions are charged to the worker\n"
      "#  clocks, so fault recovery shows up directly in the makespan)\n");
  std::printf("%-10s%12s%12s%14s%12s\n", "drop", "speedup", "drops",
              "retransmits", "acks");
  for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    pdes::RunConfig rc;
    rc.num_workers = 8;
    rc.configuration = pdes::Configuration::kDynamic;
    rc.until = until;
    rc.transport.reliable = true;
    rc.transport.faults.seed = 7;
    rc.transport.faults.drop = drop;
    rc.transport.faults.duplicate = drop / 2;
    rc.transport.faults.reorder = drop * 2;
    const auto st = bench::run_machine(fsm_build, rc);
    std::printf("%-10s%12s%12llu%14llu%12llu\n", bench::fmt(drop).c_str(),
                bench::fmt(seq / st.makespan).c_str(),
                static_cast<unsigned long long>(st.transport.dropped),
                static_cast<unsigned long long>(st.transport.retransmits),
                static_cast<unsigned long long>(st.transport.acks_sent));
    std::fflush(stdout);
    report.add_row("transport_faults", 8, "drop=" + bench::fmt(drop),
                   seq / st.makespan, st);
  }
  }

  if (want("checkpointing")) {
  std::printf(
      "\n# Ablation (f): checkpoint period x crash rate, FSM, P=8, dynamic\n"
      "# (GVT-consistent checkpoints every `period` rounds; seeded crash-stop\n"
      "#  failures per processed event; capture, detection and state-reload\n"
      "#  costs are charged to the worker clocks, so the fault-tolerance tax\n"
      "#  and the re-execution lost to each recovery both land in makespan)\n");
  std::printf("%-10s%-12s%12s%8s%10s%12s%14s\n", "period", "crash_rate",
              "speedup", "ckpts", "crashes", "recoveries", "ft_overhead");
  for (std::uint32_t period : {1u, 2u, 4u, 8u, 16u}) {
    for (double crash_rate : {0.0, 0.0002, 0.001}) {
      pdes::RunConfig rc;
      rc.num_workers = 8;
      rc.configuration = pdes::Configuration::kDynamic;
      rc.until = until;
      rc.checkpoint.period = period;
      rc.checkpoint.max_recoveries = 1000;  // sweep the rate, not the budget
      rc.transport.faults.seed = 11;
      rc.transport.faults.crash_rate = crash_rate;
      const auto st = bench::run_machine(fsm_build, rc);
      std::printf("%-10u%-12s%12s%8llu%10llu%12llu%14s\n", period,
                  bench::fmt(crash_rate, 4).c_str(),
                  bench::fmt(seq / st.makespan).c_str(),
                  static_cast<unsigned long long>(st.checkpoint.checkpoints),
                  static_cast<unsigned long long>(st.checkpoint.crashes),
                  static_cast<unsigned long long>(st.checkpoint.recoveries),
                  bench::fmt(st.checkpoint.overhead_cost).c_str());
      std::fflush(stdout);
      report.add_row("checkpointing", 8,
                     "period=" + std::to_string(period) +
                         "/crash=" + bench::fmt(crash_rate, 4),
                     seq / st.makespan, st);
    }
  }
  }

  if (want("history_cap")) {
  std::printf("\n# Ablation (c): optimistic history cap (memory), FSM, P=8\n");
  std::printf("%-10s%12s%16s\n", "cap", "speedup", "total_history");
  for (std::size_t cap : {0u, 256u, 64u, 16u, 4u}) {
    pdes::RunConfig rc;
    rc.num_workers = 8;
    rc.configuration = pdes::Configuration::kAllOptimistic;
    rc.max_history = cap;
    rc.until = until;
    const auto st = bench::run_machine(fsm_build, rc);
    std::printf("%-10zu%12s%16zu\n", cap,
                bench::fmt(seq / st.makespan).c_str(), st.total_history());
    std::fflush(stdout);
    report.add_row("history_cap", 8, "cap=" + std::to_string(cap),
                   seq / st.makespan, st);
  }
  }

  if (want("placement")) {
  std::printf(
      "\n# Ablation (g): placement x dynamic rebalancing\n"
      "# (static schemes fix the LP->worker map for the whole run; `dynamic`\n"
      "#  starts from the locality-preserving but load-blind blocks map and\n"
      "#  lets the GVT-round rebalancer migrate LPs toward observed load.\n"
      "#  cut(dyn) is the achieved cut of the final migrated placement)\n");
  struct Cell {
    const char* name;
    const bench::BuildFn* build;
    PhysTime until;
  };
  const Cell cells[] = {{"fsm-imb", &fsm_imb_build, 2000},
                        {"dct-imb", &dct_imb_build, 3000}};
  const bench::Placement statics[] = {bench::Placement::kRoundRobin,
                                      bench::Placement::kBlocks,
                                      bench::Placement::kBipartite};
  for (const Cell& cell : cells) {
    const double sc = bench::sequential_cost(*cell.build, cell.until);
    bench::Built probe = (*cell.build)();
    std::printf("# %s: %zu LPs\n", cell.name, probe.graph->size());
    std::printf("%-6s%14s%14s%14s%14s%12s%12s%12s\n", "P", "round-robin",
                "blocks", "bipartite", "dynamic", "migrations", "cut(blk)",
                "cut(dyn)");
    for (std::size_t p : {4u, 8u}) {
      pdes::RunConfig rc;
      rc.num_workers = p;
      rc.configuration = pdes::Configuration::kDynamic;
      rc.until = cell.until;
      std::printf("%-6zu", p);
      for (const bench::Placement place : statics) {
        const auto st = bench::run_machine(*cell.build, rc, place);
        std::printf("%14s", bench::fmt(sc / st.makespan).c_str());
        report.add_row("placement", p,
                       std::string(cell.name) + "/" +
                           bench::to_string(place),
                       sc / st.makespan, st);
      }
      pdes::RunConfig dyn = rc;
      dyn.rebalance.period = 4;
      dyn.rebalance.imbalance_trigger = 0.20;
      dyn.rebalance.max_moves = 4;
      pdes::Partition final_part;
      const auto st = bench::run_machine(*cell.build, dyn,
                                         bench::Placement::kBlocks,
                                         &final_part);
      const auto blk = bench::make_placement(*probe.graph,
                                             bench::Placement::kBlocks, p);
      std::printf("%14s%12llu%12zu%12zu\n",
                  bench::fmt(sc / st.makespan).c_str(),
                  static_cast<unsigned long long>(
                      st.metrics.counter(obs::Metric::kMigrations)),
                  partition::cut_size(*probe.graph, blk),
                  partition::cut_size(*probe.graph, final_part));
      std::fflush(stdout);
      report.add_row("placement", p, std::string(cell.name) + "/dynamic",
                     sc / st.makespan, st);
    }
  }
  }

  if (want("adaptation")) {
  std::printf(
      "\n# Ablation (i): adaptation policy, IIR, P=16\n"
      "# (the feedback lattice is where mixed-mode operation CREATES\n"
      "#  rollbacks: conservative LPs hold events back, their late outputs\n"
      "#  straggle into sped-ahead optimistic neighbours, and every demotion\n"
      "#  makes the next one likelier.  `rate-based` is the shipped\n"
      "#  controller; each ablated variant removes one of its guards, and\n"
      "#  `single-window` is the pre-fix controller shape: per-window\n"
      "#  decisions with no memory, no budget, no P-scaled threshold)\n");
  const PhysTime auntil = 4000;
  const double aseq = bench::sequential_cost(iir_build, auntil);
  struct Variant {
    const char* name;
    void (*tweak)(pdes::AdaptPolicy&);
  };
  const Variant variants[] = {
      {"rate-based", [](pdes::AdaptPolicy&) {}},
      {"no-budget",
       [](pdes::AdaptPolicy& a) { a.max_demote_fraction = 1.0; }},
      {"no-headroom", [](pdes::AdaptPolicy& a) { a.p_headroom = 0.0; }},
      {"single-window",
       [](pdes::AdaptPolicy& a) {
         a.rate_alpha = 1.0;
         a.min_decision_windows = 1;
         a.max_demote_fraction = 1.0;
         a.p_headroom = 0.0;
       }},
  };
  std::printf("%-16s%10s%10s%10s%10s%8s%10s\n", "policy", "speedup",
              "switches", "rollbacks", "demote", "pin", "opt_frac");
  for (const Variant& v : variants) {
    pdes::RunConfig rc;
    rc.num_workers = 16;
    rc.configuration = pdes::Configuration::kDynamic;
    rc.until = auntil;
    rc.max_history = 128;
    v.tweak(rc.adapt);
    const auto st = bench::run_machine(iir_build, rc);
    std::uint64_t switches = 0;
    for (const auto& l : st.per_lp) switches += l.mode_switches;
    std::printf("%-16s%10s%10llu%10llu%10llu%8llu%10s\n", v.name,
                bench::fmt(aseq / st.makespan).c_str(),
                static_cast<unsigned long long>(switches),
                static_cast<unsigned long long>(st.total_rollbacks()),
                static_cast<unsigned long long>(
                    st.metrics.counter(obs::Metric::kAdaptDemotions)),
                static_cast<unsigned long long>(
                    st.metrics.counter(obs::Metric::kAdaptPins)),
                bench::fmt(
                    st.metrics.gauge(obs::Gauge::kAdaptOptimisticFraction))
                    .c_str());
    std::fflush(stdout);
    report.add_row("adaptation", 16, v.name, aseq / st.makespan, st);
  }
  // Static anchors: what dynamic must track (optimistic) and beat
  // (conservative) on this circuit.
  for (const auto cfg : {pdes::Configuration::kAllOptimistic,
                         pdes::Configuration::kAllConservative}) {
    pdes::RunConfig rc;
    rc.num_workers = 16;
    rc.configuration = cfg;
    rc.until = auntil;
    rc.max_history = 128;
    const auto st = bench::run_machine(iir_build, rc);
    std::printf("%-16s%10s\n", pdes::to_string(cfg),
                bench::fmt(aseq / st.makespan).c_str());
    std::fflush(stdout);
    report.add_row("adaptation", 16, pdes::to_string(cfg),
                   aseq / st.makespan, st);
  }
  }

  if (want("clustering")) {
  std::printf(
      "\n# Ablation (h): LP clustering, 100k-signal random netlist\n"
      "# (the paper's bipartite mapping gives every signal/process its own\n"
      "#  LP; at six figures the per-LP scheduling, mailbox and GVT-scan\n"
      "#  overheads dominate.  `flat` runs the unfused graph; `target=N`\n"
      "#  fuses BFS neighbourhoods of ~N flat LPs into one ClusterLp, so\n"
      "#  intra-cluster traffic never touches the router and the GVT scan\n"
      "#  walks clusters, not flat LPs)\n");
  const PhysTime cuntil = 15;
  const auto cparams = circuits::sized_random_params(100'000, 17);
  const bench::BuildFn cbuild = [&cparams] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::build_random_circuit(*b.design, cparams);
    b.design->finalize();
    return b;
  };
  const double cseq = bench::sequential_cost(cbuild, cuntil);
  {
    bench::Built probe = cbuild();
    std::printf("# flat LPs: %zu, sequential cost: %s work units\n",
                probe.graph->size(), bench::fmt(cseq, 0).c_str());
  }
  // target = 0 is the flat baseline row.
  const auto run_cell = [&](std::size_t workers,
                            std::size_t target) -> pdes::RunStats {
    bench::Built b = cbuild();
    pdes::RunConfig rc;
    rc.num_workers = workers;
    rc.configuration = pdes::Configuration::kDynamic;
    rc.gvt_interval = 256;
    rc.until = cuntil;
    if (target == 0) {
      pdes::MachineEngine eng(
          *b.graph, partition::round_robin(b.graph->size(), workers), rc);
      return eng.run();
    }
    partition::ClusterOptions co;
    co.target_size = target;
    co.seed = 3;
    const auto assign = partition::cluster_bfs(*b.graph, co);
    pdes::FusedGraph fused = pdes::fuse_clusters(*b.graph, assign);
    pdes::MachineEngine eng(
        fused.graph, partition::round_robin(fused.graph.size(), workers), rc);
    return eng.run();
  };
  std::printf("%-6s%-12s%10s%10s%12s%14s%12s%14s\n", "P", "cluster",
              "speedup", "lps", "remote", "gvt_scan", "peak_hist",
              "total_hist");
  for (std::size_t p : {2u, 4u, 8u}) {
    for (std::size_t target : {0u, 16u, 64u, 256u}) {
      const auto st = run_cell(p, target);
      const std::string label =
          target == 0 ? "flat" : "target=" + std::to_string(target);
      std::printf("%-6zu%-12s%10s%10zu%12llu%14llu%12llu%14zu\n", p,
                  label.c_str(), bench::fmt(cseq / st.makespan).c_str(),
                  st.per_lp.size(),
                  static_cast<unsigned long long>(
                      st.metrics.counter(obs::Metric::kMessagesRemote)),
                  static_cast<unsigned long long>(
                      st.metrics.counter(obs::Metric::kGvtScanItems)),
                  static_cast<unsigned long long>(
                      st.metrics.gauge(obs::Gauge::kPeakHistory)),
                  st.total_history());
      std::fflush(stdout);
      report.add_row("clustering", p, label, cseq / st.makespan, st);
    }
  }
  }
  report.write();
  return 0;
}
