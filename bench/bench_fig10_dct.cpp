// Fig. 10 reproduction: speedup for the DCT processor at gate level
// (~1600 LPs), 1..16 processors, four configurations.  The paper reports
// the self-adapting dynamic configuration at roughly twice the speedup of
// the static ones on this circuit.
#include "bench/harness.h"
#include "bench/report.h"
#include "circuits/dct.h"

using namespace vsim;

int main() {
  const PhysTime until = 6000;  // 20 sample clocks
  bench::BuildFn build = [] {
    bench::Built b;
    b.graph = std::make_unique<pdes::LpGraph>();
    b.design = std::make_unique<vhdl::Design>(*b.graph);
    circuits::DctParams p;  // defaults sized for ~1600 LPs
    circuits::build_dct(*b.design, p);
    b.design->finalize();
    return b;
  };

  bench::Report report("fig10_dct");
  report.set_config("circuit", "dct");
  report.set_config("until", static_cast<std::uint64_t>(until));
  bench::speedup_figure(
      "Fig. 10 -- Speedup for DCT processor (gate level)", build, until,
      {1, 2, 4, 6, 8, 10, 12, 14, 16},
      {pdes::Configuration::kAllOptimistic,
       pdes::Configuration::kAllConservative, pdes::Configuration::kMixed,
       pdes::Configuration::kDynamic},
      /*max_history=*/128, &report);
  report.write();
  return 0;
}
