#include "bench/harness.h"

#include <cstdio>

#include "bench/report.h"
#include "partition/partition.h"

namespace vsim::bench {

double sequential_cost(const BuildFn& build, PhysTime until) {
  Built b = build();
  pdes::SequentialEngine eng(*b.graph);
  return eng.run(until).total_cost;
}

pdes::RunStats run_machine(const BuildFn& build, pdes::RunConfig rc,
                           bool bipartite_partition) {
  Built b = build();
  const pdes::Partition part =
      bipartite_partition
          ? partition::bipartite_bfs(*b.graph, rc.num_workers)
          : partition::round_robin(b.graph->size(), rc.num_workers);
  pdes::MachineEngine eng(*b.graph, part, rc);
  return eng.run();
}

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kRoundRobin: return "round-robin";
    case Placement::kBlocks: return "blocks";
    case Placement::kBipartite: return "bipartite";
  }
  return "?";
}

pdes::Partition make_placement(const pdes::LpGraph& graph, Placement place,
                               std::size_t workers) {
  switch (place) {
    case Placement::kRoundRobin: return partition::round_robin(graph.size(),
                                                               workers);
    case Placement::kBlocks: return partition::blocks(graph.size(), workers);
    case Placement::kBipartite: return partition::bipartite_bfs(graph,
                                                                workers);
  }
  return partition::round_robin(graph.size(), workers);
}

pdes::RunStats run_machine(const BuildFn& build, pdes::RunConfig rc,
                           Placement place,
                           pdes::Partition* final_partition) {
  Built b = build();
  pdes::MachineEngine eng(*b.graph, make_placement(*b.graph, place,
                                                   rc.num_workers),
                          rc);
  pdes::RunStats st = eng.run();
  if (final_partition != nullptr) *final_partition = eng.partition();
  return st;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::vector<SweepResult> speedup_figure(
    const std::string& title, const BuildFn& build, PhysTime until,
    const std::vector<std::size_t>& workers,
    const std::vector<pdes::Configuration>& configs,
    std::size_t max_history, Report* report) {
  const double seq = sequential_cost(build, until);
  {
    Built probe = build();
    std::printf("# %s\n", title.c_str());
    std::printf("# LPs: %zu, sequential cost: %s work units\n",
                probe.graph->size(), fmt(seq, 0).c_str());
  }
  std::printf("%-6s", "P");
  for (auto c : configs) std::printf("%14s", pdes::to_string(c));
  std::printf("\n");

  std::vector<SweepResult> out;
  for (std::size_t p : workers) {
    std::printf("%-6zu", p);
    for (auto c : configs) {
      pdes::RunConfig rc;
      rc.num_workers = p;
      rc.configuration = c;
      rc.until = until;
      rc.max_history = max_history;
      pdes::RunStats st = run_machine(build, rc);
      const double sp = st.deadlocked ? 0.0 : seq / st.makespan;
      std::printf("%14s", st.deadlocked ? "deadlock" : fmt(sp).c_str());
      if (report) report->add_row(title, p, pdes::to_string(c), sp, st);
      out.push_back({p, c, sp, std::move(st)});
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  // A deadlocked cell is a bug in the protocol or the configuration; dump
  // the per-LP diagnostics instead of leaving only the "deadlock" marker.
  for (const SweepResult& r : out) {
    if (!r.stats.deadlock_report) continue;
    std::printf("# P=%zu %s:\n%s\n", r.workers, pdes::to_string(r.config),
                r.stats.deadlock_report->str().c_str());
  }
  for (const SweepResult& r : out) {
    if (!r.stats.transport_error) continue;
    std::printf("# P=%zu %s: transport error: %s\n", r.workers,
                pdes::to_string(r.config),
                r.stats.transport_error->str().c_str());
  }
  std::printf("\n");
  return out;
}

}  // namespace vsim::bench
