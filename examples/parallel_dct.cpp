// Domain example: parallel gate-level simulation of the DCT processor.
//
// Demonstrates the workflow the paper motivates -- a large VLSI circuit
// whose sequential simulation is the design-loop bottleneck: build the
// gate-level netlist, pick a partition, sweep worker counts with the
// self-adaptive protocol, and report the speedup profile plus per-worker
// load.  Also runs the real multi-threaded engine once to validate the
// result on live threads.
#include <cstdio>

#include "circuits/dct.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"

using namespace vsim;

namespace {

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  circuits::DctCircuit circuit;
};

Built build() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  circuits::DctParams p;
  p.n = 3;  // keep the example quick
  b.circuit = circuits::build_dct(*b.design, p);
  b.design->finalize();
  return b;
}

}  // namespace

int main() {
  const PhysTime until = 3000;

  Built ref = build();
  std::printf("DCT processor: %zu LPs (%zu signals, %zu processes)\n",
              ref.graph->size(), ref.design->num_signals(),
              ref.design->num_processes());

  pdes::SequentialEngine seq(*ref.graph);
  const auto seq_result = seq.run(until);
  std::printf("sequential cost: %.0f work units, %llu events\n\n",
              seq_result.total_cost,
              static_cast<unsigned long long>(
                  seq_result.stats.total_events()));

  std::printf("%-4s %10s %10s %12s %14s\n", "P", "speedup", "rollbacks",
              "gvt rounds", "load imbalance");
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    Built b = build();
    pdes::RunConfig rc;
    rc.num_workers = p;
    rc.configuration = pdes::Configuration::kDynamic;
    rc.until = until;
    pdes::MachineEngine eng(
        *b.graph, partition::round_robin(b.graph->size(), p), rc);
    const auto st = eng.run();
    double max_busy = 0, sum_busy = 0;
    for (const auto& w : st.per_worker) {
      max_busy = std::max(max_busy, w.busy_cost);
      sum_busy += w.busy_cost;
    }
    const double imbalance =
        sum_busy > 0 ? max_busy / (sum_busy / static_cast<double>(p)) : 1.0;
    std::printf("%-4zu %10.2f %10llu %12llu %14.2f\n", p,
                seq_result.total_cost / st.makespan,
                static_cast<unsigned long long>(st.total_rollbacks()),
                static_cast<unsigned long long>(st.gvt_rounds), imbalance);
  }

  // Live threads: run once with 2 workers and verify nothing deadlocks.
  Built t = build();
  pdes::RunConfig rc;
  rc.num_workers = 2;
  rc.configuration = pdes::Configuration::kDynamic;
  rc.until = until;
  pdes::ThreadedEngine eng(*t.graph,
                           partition::round_robin(t.graph->size(), 2), rc);
  const auto st = eng.run();
  std::printf("\nthreaded run (2 workers): %llu events committed, %s\n",
              static_cast<unsigned long long>(st.total_committed()),
              st.deadlocked ? "DEADLOCK" : "clean termination");
  return st.deadlocked ? 1 : 0;
}
