// Domain example: exploring synchronisation protocols on one circuit.
//
// Shows the knobs the library exposes: the four configurations, the two
// simultaneous-event orderings, the two conservative strategies (global
// sync vs null messages + lookahead), and per-LP statistics.  Prints a
// small report of how each protocol behaves on the gate-level IIR filter.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "circuits/iir.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"

using namespace vsim;

namespace {

using pdes::Configuration;
using pdes::ConservativeStrategy;
using pdes::OrderingMode;

struct Variant {
  const char* name;
  Configuration config;
  OrderingMode ordering;
  ConservativeStrategy strategy;
  bool lookahead;
};

std::unique_ptr<pdes::LpGraph> g_graph;

void build(std::unique_ptr<pdes::LpGraph>& graph,
           std::unique_ptr<vhdl::Design>& design) {
  graph = std::make_unique<pdes::LpGraph>();
  design = std::make_unique<vhdl::Design>(*graph);
  circuits::IirParams p;
  p.sections = 3;
  circuits::build_iir(*design, p);
  design->finalize();
}

}  // namespace

int main() {
  const PhysTime until = 4000;
  const std::size_t workers = 8;

  double seq_cost;
  {
    std::unique_ptr<pdes::LpGraph> graph;
    std::unique_ptr<vhdl::Design> design;
    build(graph, design);
    pdes::SequentialEngine seq(*graph);
    seq_cost = seq.run(until).total_cost;
    std::printf("IIR (3 sections): %zu LPs, sequential cost %.0f\n\n",
                graph->size(), seq_cost);
  }

  const Variant variants[] = {
      {"optimistic / arbitrary", Configuration::kAllOptimistic,
       OrderingMode::kArbitrary, ConservativeStrategy::kGlobalSync, false},
      {"optimistic / user-consistent", Configuration::kAllOptimistic,
       OrderingMode::kUserConsistent, ConservativeStrategy::kGlobalSync,
       false},
      {"conservative / lookahead-free", Configuration::kAllConservative,
       OrderingMode::kArbitrary, ConservativeStrategy::kGlobalSync, false},
      {"conservative / null-message+la", Configuration::kAllConservative,
       OrderingMode::kArbitrary, ConservativeStrategy::kNullMessage, true},
      {"mixed (registers conservative)", Configuration::kMixed,
       OrderingMode::kArbitrary, ConservativeStrategy::kGlobalSync, false},
      {"dynamic (self-adaptive)", Configuration::kDynamic,
       OrderingMode::kArbitrary, ConservativeStrategy::kGlobalSync, false},
  };

  std::printf("%-34s %8s %9s %9s %8s %9s\n", "protocol", "speedup",
              "rollback", "anti-msg", "nulls", "switches");
  for (const Variant& v : variants) {
    std::unique_ptr<pdes::LpGraph> graph;
    std::unique_ptr<vhdl::Design> design;
    build(graph, design);
    pdes::RunConfig rc;
    rc.num_workers = workers;
    rc.configuration = v.config;
    rc.ordering = v.ordering;
    rc.strategy = v.strategy;
    rc.use_lookahead = v.lookahead;
    rc.until = until;
    pdes::MachineEngine eng(
        *graph, partition::round_robin(graph->size(), workers), rc);
    const auto st = eng.run();
    std::uint64_t anti = 0, switches = 0;
    for (const auto& l : st.per_lp) {
      anti += l.anti_messages_sent;
      switches += l.mode_switches;
    }
    std::printf("%-34s %8.2f %9llu %9llu %8llu %9llu\n", v.name,
                st.deadlocked ? 0.0 : seq_cost / st.makespan,
                static_cast<unsigned long long>(st.total_rollbacks()),
                static_cast<unsigned long long>(anti),
                static_cast<unsigned long long>(st.total_null_messages()),
                static_cast<unsigned long long>(switches));
  }

  std::printf(
      "\nNotes:\n"
      " - the lookahead-free protocols never send null messages;\n"
      " - the dynamic protocol demotes rollback-prone or memory-bound LPs\n"
      "   to conservative mode at GVT rounds (see 'switches');\n"
      " - user-consistent ordering adds rollbacks for equal timestamps.\n");
  return 0;
}
