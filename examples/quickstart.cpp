// Quickstart: build a tiny gate-level design with the C++ API, simulate it
// sequentially and in parallel, and check both agree.
//
//   c = a AND b, registered on a clock; 'a' toggles every 30 time units.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "circuits/builder.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"

using namespace vsim;

int main() {
  // ---- 1. Describe the design ----
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  circuits::CircuitBuilder cb(design, /*gate_delay=*/2);

  const auto clk = cb.wire("clk", Logic::k0);
  cb.clock(clk, /*half_period=*/25);
  const auto a = cb.wire("a", Logic::k0);
  cb.stimulus(a, {{0, Logic::k0}, {30, Logic::k1}, {60, Logic::k0},
                  {90, Logic::k1}});
  const auto b = cb.wire("b", Logic::k0);
  cb.stimulus(b, {{0, Logic::k1}});
  const auto ab = cb.wire("ab");
  cb.gate(circuits::GateKind::kAnd, {a, b}, ab);
  const auto q = cb.wire("q", Logic::k0);
  cb.dff(clk, ab, q);

  // ---- 2. Attach a trace monitor and finalize ----
  vhdl::TraceRecorder seq_trace(design, {ab, q});
  design.finalize();
  std::printf("design has %zu LPs (%zu signals, %zu processes)\n",
              graph.size(), design.num_signals(), design.num_processes());

  // ---- 3. Sequential reference run ----
  pdes::SequentialEngine seq(graph);
  seq.set_commit_hook(seq_trace.hook());
  const auto seq_result = seq.run(/*until=*/200);
  std::printf("sequential: %llu events, cost %.0f work units\n",
              static_cast<unsigned long long>(seq_result.stats.total_events()),
              seq_result.total_cost);

  std::printf("\ntrace of q:\n");
  for (const auto& e : seq_trace.trace(1))
    std::printf("  t=%-4lld delta=%-2lld q=%s\n",
                static_cast<long long>(e.ts.pt),
                static_cast<long long>(e.ts.delta_cycle()),
                e.value.str().c_str());

  // ---- 4. Parallel run (4 workers, self-adaptive protocol) ----
  pdes::LpGraph graph2;
  vhdl::Design design2(graph2);
  circuits::CircuitBuilder cb2(design2, 2);
  const auto clk2 = cb2.wire("clk", Logic::k0);
  cb2.clock(clk2, 25);
  const auto a2 = cb2.wire("a", Logic::k0);
  cb2.stimulus(a2, {{0, Logic::k0}, {30, Logic::k1}, {60, Logic::k0},
                    {90, Logic::k1}});
  const auto b2 = cb2.wire("b", Logic::k0);
  cb2.stimulus(b2, {{0, Logic::k1}});
  const auto ab2 = cb2.wire("ab");
  cb2.gate(circuits::GateKind::kAnd, {a2, b2}, ab2);
  const auto q2 = cb2.wire("q", Logic::k0);
  cb2.dff(clk2, ab2, q2);
  vhdl::TraceRecorder par_trace(design2, {ab2, q2});
  design2.finalize();

  pdes::RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = pdes::Configuration::kDynamic;
  rc.until = 200;
  pdes::MachineEngine par(
      graph2, partition::round_robin(graph2.size(), rc.num_workers), rc);
  par.set_commit_hook(par_trace.hook());
  const auto stats = par.run();
  std::printf("\nparallel (4 workers, dynamic): %llu events, %llu rollbacks, "
              "%llu GVT rounds\n",
              static_cast<unsigned long long>(stats.total_events()),
              static_cast<unsigned long long>(stats.total_rollbacks()),
              static_cast<unsigned long long>(stats.gvt_rounds));

  const std::string diff = vhdl::TraceRecorder::diff(seq_trace, par_trace);
  std::printf("parallel trace %s sequential trace\n",
              diff.empty() ? "MATCHES" : "DIFFERS FROM");
  return diff.empty() ? 0 : 1;
}
