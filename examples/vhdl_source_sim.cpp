// Domain example: compile VHDL *source code* and simulate it in parallel.
//
// Exercises the full pipeline the paper describes: VHDL text -> frontend
// (lexer/parser/elaborator) -> flattened process/signal graph -> distributed
// VHDL kernel -> PDES engines.  The design is a testbench around a 4-bit
// synchronous counter whose increment logic is built from half-adder
// component instances (hierarchy + concurrent assignments), with clocked
// processes, `wait until`, `wait for`, variables, concatenation and a case
// statement.
#include <cstdio>

#include "frontend/elaborator.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"
#include "vhdl/vcd.h"

using namespace vsim;

namespace {

const char* kSource = R"(
-- Half adder used by the counter's carry chain.
entity half_adder is
  port (a, b : in std_logic;
        s, c : out std_logic);
end half_adder;

architecture rtl of half_adder is
begin
  s <= a xor b;
  c <= a and b;
end rtl;

-- 4-bit synchronous counter, increment logic from half-adder instances.
entity counter4 is
  port (clk, rst : in std_logic;
        q0, q1, q2, q3 : out std_logic;
        gray : out std_logic);
end counter4;

architecture rtl of counter4 is
  component half_adder is
    port (a, b : in std_logic;
          s, c : out std_logic);
  end component half_adder;
  signal st0, st1, st2, st3 : std_logic := '0';
  signal in0, in1, in2, in3 : std_logic;
  signal cy0, cy1, cy2, cy3 : std_logic;
  constant one : std_logic := '1';
  signal one_s : std_logic := '1';
begin
  u0 : half_adder port map (a => one_s, b => st0, s => in0, c => cy0);
  u1 : half_adder port map (a => cy0, b => st1, s => in1, c => cy1);
  u2 : half_adder port map (a => cy1, b => st2, s => in2, c => cy2);
  u3 : half_adder port map (cy2, st3, in3, cy3);  -- positional map

  reg : process (clk, rst)
  begin
    if rst = '1' then
      st0 <= '0'; st1 <= '0'; st2 <= '0'; st3 <= '0';
    elsif rising_edge(clk) then
      st0 <= in0; st1 <= in1; st2 <= in2; st3 <= in3;
    end if;
  end process reg;

  q0 <= st0; q1 <= st1; q2 <= st2; q3 <= st3;

  -- Gray-code bit of the two LSBs, via variable + concat + case.
  graydec : process (st0, st1)
    variable sel : std_logic_vector(1 downto 0);
  begin
    sel := st1 & st0;
    case sel is
      when "00" => gray <= '0';
      when "01" => gray <= '1';
      when "10" => gray <= '1';
      when others => gray <= '0';
    end case;
  end process graydec;
end rtl;

-- Testbench: clock, reset, and an overflow watcher.
entity tb is
end tb;

architecture sim of tb is
  component counter4 is
    port (clk, rst : in std_logic;
          q0, q1, q2, q3 : out std_logic;
          gray : out std_logic);
  end component counter4;
  signal clk : std_logic := '0';
  signal rst : std_logic := '1';
  signal q0, q1, q2, q3, gray : std_logic;
  signal full : std_logic := '0';
begin
  dut : counter4 port map (clk => clk, rst => rst, q0 => q0, q1 => q1,
                           q2 => q2, q3 => q3, gray => gray);

  clkgen : process
  begin
    clk <= '0';
    wait for 10 ns;
    clk <= '1';
    wait for 10 ns;
  end process clkgen;

  rstgen : process
  begin
    rst <= '1';
    wait for 25 ns;
    rst <= '0';
    wait;
  end process rstgen;

  watcher : process
  begin
    wait until q3 = '1' and q2 = '1' and q1 = '1' and q0 = '1';
    full <= '1';
    wait for 15 ns;
    full <= '0';
  end process watcher;
end sim;
)";

}  // namespace

int main() {
  // ---- compile + elaborate ----
  pdes::LpGraph graph;
  vhdl::Design design(graph);
  fe::elaborate_source(kSource, "tb", design);

  const auto probes = std::vector<vhdl::SignalId>{
      design.find_signal("tb/q0"), design.find_signal("tb/q1"),
      design.find_signal("tb/q2"), design.find_signal("tb/q3"),
      design.find_signal("tb/gray"), design.find_signal("tb/full")};
  vhdl::TraceRecorder trace(design, probes);
  design.finalize();
  std::printf("elaborated: %zu LPs (%zu signals, %zu processes)\n",
              graph.size(), design.num_signals(), design.num_processes());

  // ---- sequential run ----
  pdes::SequentialEngine seq(graph);
  seq.set_commit_hook(trace.hook());
  seq.run(/*until=*/500);

  std::printf("\ncounter value changes (q3 q2 q1 q0):\n");
  // Reconstruct the counter value at each change of any bit.
  char bits[5] = "0000";
  PhysTime last_pt = -1;
  std::vector<std::pair<PhysTime, std::string>> changes;
  for (int b = 0; b < 4; ++b) {
    for (const auto& e : trace.trace(static_cast<std::size_t>(b)))
      changes.push_back({e.ts.pt, std::to_string(b) + e.value.str()});
  }
  std::sort(changes.begin(), changes.end());
  for (const auto& [pt, enc] : changes) {
    if (pt != last_pt && last_pt >= 0)
      std::printf("  t=%-4lld  %s\n", static_cast<long long>(last_pt), bits);
    last_pt = pt;
    bits[3 - (enc[0] - '0')] = enc[1];
  }
  if (last_pt >= 0)
    std::printf("  t=%-4lld  %s\n", static_cast<long long>(last_pt), bits);

  std::printf("\n'full' overflow pulses:\n");
  for (const auto& e : trace.trace(5))
    std::printf("  t=%-4lld full=%s\n", static_cast<long long>(e.ts.pt),
                e.value.str().c_str());

  // ---- parallel run, compare traces ----
  pdes::LpGraph graph2;
  vhdl::Design design2(graph2);
  fe::elaborate_source(kSource, "tb", design2);
  const auto probes2 = std::vector<vhdl::SignalId>{
      design2.find_signal("tb/q0"), design2.find_signal("tb/q1"),
      design2.find_signal("tb/q2"), design2.find_signal("tb/q3"),
      design2.find_signal("tb/gray"), design2.find_signal("tb/full")};
  vhdl::TraceRecorder trace2(design2, probes2);
  design2.finalize();

  pdes::RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = pdes::Configuration::kDynamic;
  rc.until = 500;
  pdes::MachineEngine eng(
      graph2, partition::round_robin(graph2.size(), rc.num_workers), rc);
  eng.set_commit_hook(trace2.hook());
  const auto st = eng.run();

  const std::string diff = vhdl::TraceRecorder::diff(trace, trace2);
  std::printf("\nparallel run (4 workers): %llu events, %llu rollbacks -- "
              "trace %s\n",
              static_cast<unsigned long long>(st.total_events()),
              static_cast<unsigned long long>(st.total_rollbacks()),
              diff.empty() ? "MATCHES sequential" : diff.c_str());

  if (vhdl::write_vcd_file(trace, "counter.vcd"))
    std::printf("waveforms written to counter.vcd (open with gtkwave)\n");
  return diff.empty() ? 0 : 1;
}
